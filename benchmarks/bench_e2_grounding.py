"""E2 / Tab-A — grounding ablation: what each P2 component buys.

Paper claim (Section 3.2, Grounding): connecting the system to domain
vocabulary, schema knowledge, and data values is what makes answers
"relevant and factually consistent"; "irrelevant or misplaced data ...
can cause hallucinations or erroneous conclusions".

Conditions (additive ablation over the grounded parser):

* ``ungrounded``  — exact table/column name matching only;
* ``+schema_kg``  — fuzzy label/description matching (typo recovery);
* ``+values``     — literal value index ("in zurich" -> city='zurich');
* ``+joins``      — cross-table filters via FK paths (full grounding).

Measured on generated NL2SQL workloads at three paraphrase-noise levels;
metric is execution accuracy against executed gold answers.

Expected shape: accuracy increases monotonically with grounding
components, and the gap widens with noise (grounding is robustness).
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_results
from repro.benchgen import WorkloadSpec, build_workload, execution_accuracy
from repro.kg import SchemaKnowledgeGraph
from repro.nl import GroundedSemanticParser, GroundingConfig

CONDITIONS = [
    (
        "ungrounded",
        GroundingConfig(
            use_schema_graph=False, use_value_index=False,
            use_join_resolution=False, use_vocabulary=False,
        ),
    ),
    (
        "+schema_kg",
        GroundingConfig(
            use_schema_graph=True, use_value_index=False,
            use_join_resolution=False, use_vocabulary=False,
        ),
    ),
    (
        "+values",
        GroundingConfig(
            use_schema_graph=True, use_value_index=True,
            use_join_resolution=False, use_vocabulary=False,
        ),
    ),
    (
        "+joins (full)",
        GroundingConfig(
            use_schema_graph=True, use_value_index=True,
            use_join_resolution=True, use_vocabulary=False,
        ),
    ),
]

NOISE_LEVELS = (0.0, 0.4, 0.8)
N_PER_DOMAIN = 18
N_DOMAINS = 3


@pytest.fixture(scope="module")
def workloads():
    return {
        noise: build_workload(
            WorkloadSpec(
                n_questions_per_domain=N_PER_DOMAIN,
                n_domains=N_DOMAINS,
                paraphrase_strength=noise,
                seed=77,
            )
        )
        for noise in NOISE_LEVELS
    }


def run_condition(workload, config):
    kg_cache = {}
    correct = 0
    for item in workload.items:
        catalog = item.spec.database.catalog
        key = id(catalog)
        if key not in kg_cache:
            kg_cache[key] = SchemaKnowledgeGraph(catalog)
        parser = GroundedSemanticParser(kg_cache[key], config=config)
        try:
            outcome = parser.parse(item.surface_question)
            result = item.spec.database.execute(outcome.sql)
        except Exception:  # noqa: BLE001 - a failed parse is a wrong answer
            continue
        ordered = item.case.template == "top_n"
        if execution_accuracy(result.rows, item.case.gold_rows, ordered=ordered):
            correct += 1
    return correct / len(workload.items)


def test_e2_grounding_ablation(workloads, benchmark):
    rows = []
    accuracy = {}
    for name, config in CONDITIONS:
        row = [name]
        for noise in NOISE_LEVELS:
            value = run_condition(workloads[noise], config)
            accuracy[(name, noise)] = value
            row.append(f"{value:.2f}")
        rows.append(row)

    write_results(
        "e2_grounding",
        format_table(
            ["condition"] + [f"noise={n}" for n in NOISE_LEVELS],
            rows,
            title=(
                "E2: NL2SQL execution accuracy by grounding components "
                f"({N_PER_DOMAIN * N_DOMAINS} questions x {N_DOMAINS} domains)"
            ),
        ),
    )

    # Timed kernel: one fully-grounded parse.
    item = workloads[0.0].items[0]
    kg = SchemaKnowledgeGraph(item.spec.database.catalog)
    parser = GroundedSemanticParser(kg)
    benchmark(lambda: parser.parse(item.case.question))

    # Shape: full grounding >= ungrounded at every noise level, strictly
    # better on clean data (value/join templates are unreachable without).
    for noise in NOISE_LEVELS:
        assert accuracy[("+joins (full)", noise)] >= accuracy[("ungrounded", noise)]
    assert accuracy[("+joins (full)", 0.0)] > accuracy[("ungrounded", 0.0)]
    assert accuracy[("+joins (full)", 0.0)] >= 0.9
