"""E4 / Fig-B — selective answering: risk/coverage of abstention policies.

Paper claim (P4): the system should "refrain from producing answers when
unable to produce any answer with sufficient certainty".

Conditions (confidence source feeding a threshold policy):

* ``self_report``        — abstain on low self-reported confidence;
* ``consistency``        — abstain on low sample agreement;
* ``consistency+verify`` — agreement, plus hard abstention whenever
  provenance verification fails (the DESIGN.md verification-depth axis).

Output: risk (error rate among answered) at matched coverage levels, and
the area under the risk-coverage curve (AURC, lower is better).

Expected shape: self-report barely orders answers (near-flat curve);
consistency produces a steep curve (low risk at moderate coverage);
verification removes a further slice of wrong answers at equal coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import format_table, write_results
from repro.nl import SimulatedLLM
from repro.soundness import (
    AnswerVerifier,
    ConsistencyUQ,
    area_under_risk_coverage,
    risk_coverage_curve,
)
from repro.soundness.abstention import accuracy_at_coverage
from repro.sqldb import Database

N_QUESTIONS = 150
ERROR_RATE = 0.45
GOLD = "SELECT AVG(salary) AS avg_salary FROM emp WHERE dept = 'x'"


def make_database() -> Database:
    db = Database()
    db.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept TEXT, salary FLOAT)")
    rows = ", ".join(
        f"({i}, '{'xyzw'[i % 4]}', {40.0 + 9 * (i % 13)})" for i in range(1, 41)
    )
    db.execute(f"INSERT INTO emp VALUES {rows}")
    return db


@pytest.fixture(scope="module")
def observations():
    db = make_database()
    llm = SimulatedLLM(db.catalog, error_rate=ERROR_RATE, seed=123)
    uq = ConsistencyUQ(db)
    verifier = AnswerVerifier(db)
    self_conf, cons_conf, verified_conf, correct = [], [], [], []
    for index in range(N_QUESTIONS):
        outputs = llm.generate_sql(f"question {index}", GOLD, n_samples=5)
        vote = uq.assess(outputs)
        is_correct = 1.0 if vote.chosen is not None and vote.chosen.is_faithful else 0.0
        self_conf.append(outputs[0].self_confidence)
        cons_conf.append(vote.confidence)
        # Verification gate: a failed provenance check zeroes confidence.
        gated = vote.confidence
        if vote.chosen is not None:
            try:
                result = db.execute(vote.chosen.sql)
                if not verifier.verify(result, depth="provenance").passed:
                    gated = 0.0
            except Exception:  # noqa: BLE001
                gated = 0.0
        else:
            gated = 0.0
        verified_conf.append(gated)
        correct.append(is_correct)
    return (
        np.array(self_conf),
        np.array(cons_conf),
        np.array(verified_conf),
        np.array(correct),
    )


def test_e4_risk_coverage(observations, benchmark):
    self_conf, cons_conf, verified_conf, correct = observations
    conditions = [
        ("self_report", self_conf),
        ("consistency", cons_conf),
        ("consistency+verify", verified_conf),
    ]
    rows = []
    aurcs = {}
    for name, confidences in conditions:
        points = risk_coverage_curve(confidences, correct)
        aurc = area_under_risk_coverage(points)
        aurcs[name] = aurc
        row = [name, f"{aurc:.3f}"]
        for target in (0.9, 0.7, 0.5):
            row.append(f"{accuracy_at_coverage(points, target):.2f}")
        rows.append(row)

    write_results(
        "e4_abstention",
        format_table(
            ["condition", "AURC", "acc@cov0.9", "acc@cov0.7", "acc@cov0.5"],
            rows,
            title=(
                f"E4: selective answering at generator error rate {ERROR_RATE} "
                f"({N_QUESTIONS} questions; base accuracy "
                f"{float(np.mean(correct)):.2f})"
            ),
        ),
    )

    benchmark(lambda: risk_coverage_curve(cons_conf, correct))

    # Shape: consistency-based selection strictly dominates self-report;
    # the verification gate does not hurt (and usually helps).
    assert aurcs["consistency"] < aurcs["self_report"]
    assert aurcs["consistency+verify"] <= aurcs["consistency"] + 0.02
