"""E17 — flight recorder: record overhead, replay fidelity & throughput.

The PR-5 flight recorder (:mod:`repro.obs.recorder` /
:mod:`repro.obs.replay`) is only worth keeping always-on if capture is
nearly free and replay actually reproduces.  This benchmark measures:

* **record overhead** — mean turn latency with ``record_turns`` on vs
  off over matched conversational workloads on cold engines (the
  acceptance bound: capture costs at most 5% of a turn);
* **replay fidelity & throughput** — a recorded session replayed on a
  fresh engine must produce **zero divergences** (asserted at every
  scale — fidelity is correctness, not speed), timed in turns/second;
* **black-box serialisation** — ``FlightRecorder.to_jsonl`` renders per
  second and bytes per turn, the cost of dump-on-anomaly.

``E17_SCALE`` scales iteration counts (CI smoke uses 0.1; timing bounds
are only asserted at full scale).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from conftest import format_table, write_results
from repro.core import CDAEngine, ReliabilityConfig
from repro.datasets import build_swiss_labour_registry
from repro.obs import BlackBox, replay_session

SCALE = float(os.environ.get("E17_SCALE", "1.0"))
#: Timing noise dominates small runs; only full scale asserts the bounds.
ASSERT_BOUNDS = SCALE >= 1.0

RESULTS_DIR = Path(__file__).parent / "results"

QUESTIONS = (
    "how many employees are there",
    "average employees by canton",
    "what data do you have about employment",
    "employment",  # resolves the discovery turn's clarification
    "and for bern",
)


def _scaled(n: int) -> int:
    return max(2, int(n * SCALE))


def _fresh_engine(record_turns: bool) -> CDAEngine:
    """An engine over its own cold bundle (no shared query cache)."""
    bundle = build_swiss_labour_registry(seed=0)
    engine = CDAEngine(
        bundle.registry,
        bundle.vocabulary,
        config=ReliabilityConfig(record_turns=record_turns),
    )
    if engine.recorder is not None:
        engine.recorder.context.update(domain="swiss", seed=0)
    return engine


#: Script repetitions per timed session (more turns per sample beats
#: down per-session timing noise — the effect being measured is ~2% of
#: a turn, well inside single-session scheduler jitter).
SESSION_REPEATS = 4


def _run_session(engine: CDAEngine) -> float:
    """Seconds spent inside ``ask`` for one scripted session (GC parked
    so collection pauses do not land on one arm by luck)."""
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(SESSION_REPEATS):
            for question in QUESTIONS:
                engine.ask(question)
        return time.perf_counter() - started
    finally:
        gc.enable()


def _record_overhead(rounds: int) -> tuple[dict, CDAEngine]:
    """Paired A/B sessions: recorder on vs off, order alternated.

    Engine construction (bundle build, cache attach) happens outside the
    timed region; each arm gets its own cold engine per round so neither
    benefits from the other's query cache.  The headline is the *median*
    of per-round on/off ratios — host timing noise on a ~100 µs effect
    makes means of small samples unreliable.
    """
    ratios: list[float] = []
    on_seconds = 0.0
    off_seconds = 0.0
    turns = rounds * len(QUESTIONS) * SESSION_REPEATS
    last_recording_engine: CDAEngine | None = None
    for round_index in range(rounds):
        arms = [True, False] if round_index % 2 == 0 else [False, True]
        seconds_by_arm = {}
        for record_turns in arms:
            engine = _fresh_engine(record_turns)
            seconds_by_arm[record_turns] = _run_session(engine)
            if record_turns:
                last_recording_engine = engine
        on_seconds += seconds_by_arm[True]
        off_seconds += seconds_by_arm[False]
        ratios.append(seconds_by_arm[True] / seconds_by_arm[False])
    stats = {
        "turns_per_arm": turns,
        "turn_on_us": on_seconds / turns * 1e6,
        "turn_off_us": off_seconds / turns * 1e6,
        "overhead_ratio": statistics.median(ratios),
        "overhead_ratio_mean": on_seconds / off_seconds,
    }
    return stats, last_recording_engine


def _serialize_throughput(engine: CDAEngine, iterations: int) -> dict:
    """``to_jsonl`` renders per second for the session black box."""
    text = engine.recorder.to_jsonl()  # resolves the fingerprint once
    started = time.perf_counter()
    for _ in range(iterations):
        text = engine.recorder.to_jsonl()
    seconds = (time.perf_counter() - started) / iterations
    return {
        "blackbox_bytes": len(text),
        "bytes_per_turn": len(text) / max(1, len(engine.recorder)),
        "serialize_per_second": 1.0 / seconds,
        "jsonl": text,
    }


def _replay(blackbox: BlackBox, sessions: int) -> dict:
    """Replay fidelity (must be exact) and throughput."""
    divergences = 0
    started = time.perf_counter()
    for _ in range(sessions):
        report = replay_session(blackbox)
        divergences += report.divergence_count
        divergences += len(report.header_issues)
    seconds = time.perf_counter() - started
    replayed_turns = sessions * len(blackbox)
    return {
        "sessions": sessions,
        "turns": replayed_turns,
        "divergences": divergences,
        "replay_turns_per_second": replayed_turns / seconds,
    }


def test_e17_recorder(benchmark):
    # The overhead headline feeds the regression gate even in smoke
    # runs, and a median over 2 rounds is all noise — keep at least 8
    # paired rounds regardless of scale.
    overhead, engine = _record_overhead(max(8, _scaled(20)))
    serialize = _serialize_throughput(engine, _scaled(200))
    blackbox = BlackBox.loads(serialize.pop("jsonl"))
    replay = _replay(blackbox, _scaled(10))

    # Fidelity is a correctness property: asserted at every scale.
    assert replay["divergences"] == 0, replay

    payload = {
        "experiment": "E17",
        "scale": SCALE,
        "bounds_asserted": ASSERT_BOUNDS,
        "record_overhead_ratio": round(overhead["overhead_ratio"], 6),
        "record_overhead_ratio_mean": round(
            overhead["overhead_ratio_mean"], 6
        ),
        "turn_recorded_us": round(overhead["turn_on_us"], 2),
        "turn_unrecorded_us": round(overhead["turn_off_us"], 2),
        "turns_per_arm": overhead["turns_per_arm"],
        "blackbox_bytes_per_turn": round(serialize["bytes_per_turn"], 1),
        "serialize_per_second": round(serialize["serialize_per_second"], 1),
        "replay_turns_per_second": round(replay["replay_turns_per_second"], 1),
        "replay_divergences": replay["divergences"],
        "replay_turns": replay["turns"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(
        RESULTS_DIR / "BENCH_recorder.json", "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)

    write_results(
        "e17_recorder",
        format_table(
            ["measure", "value"],
            [
                [
                    "record overhead (median)",
                    f"{(overhead['overhead_ratio'] - 1.0) * 100:+.2f} % "
                    f"({overhead['turn_on_us']:.0f} vs "
                    f"{overhead['turn_off_us']:.0f} us/turn, "
                    f"{overhead['turns_per_arm']} turns/arm)",
                ],
                [
                    "black box size",
                    f"{serialize['bytes_per_turn']:.0f} bytes/turn",
                ],
                [
                    "black box serialise",
                    f"{serialize['serialize_per_second']:.0f} boxes/s",
                ],
                [
                    "replay throughput",
                    f"{replay['replay_turns_per_second']:.0f} turns/s",
                ],
                [
                    "replay fidelity",
                    f"{replay['divergences']} divergences over "
                    f"{replay['turns']} replayed turns",
                ],
            ],
            title=f"E17: flight recorder (scale={SCALE})",
        ),
    )

    # Timed kernel: capture-side cost — one scripted session with the
    # recorder on (fresh engine each iteration, construction excluded
    # via the benchmark's own calibration being dominated by ask()).
    benchmark(lambda: _run_session(_fresh_engine(True)))

    if ASSERT_BOUNDS:
        # The acceptance bound: always-on capture costs at most 5% of a
        # turn (plus loose sanity floors for the derived throughputs).
        assert overhead["overhead_ratio"] <= 1.05, overhead
        assert serialize["serialize_per_second"] > 10, serialize
        assert replay["replay_turns_per_second"] > 1, replay
