"""E6 / Tab-D — guidance: clarification converts guesses into answers.

Paper claim (P5): guidance supports users "towards correct answers and
desired insights more efficiently"; Section 3.2 proposes ask-and-refine
dialogues that integrate user input "in each reasoning stage".

Setup: a purpose-built domain with two structurally identical tables
(``store_sales`` and ``online_sales``), so questions like "what is the
total amount of sales" are *irreducibly ambiguous* — no grounding can
resolve them; only the user knows which channel they mean.  Half the
goals target each channel; two control goals are unambiguous.

Policies:

* ``never``          — the system commits to its best guess (forced first
  candidate), the LLM-chat default;
* ``when_ambiguous`` — ask exactly when grounding reports a tie;
* ``always``         — confirm every interpretation before answering.

The simulated user answers clarification questions consistently with
their goal but does not rephrase (a user who could rephrase precisely
would not need guidance).

Metrics: task success rate and mean user turns.

Expected shape: ``never`` is fastest but wrong on about half the
ambiguous goals; ``when_ambiguous`` reaches full success for one extra
turn on ambiguous goals only; ``always`` matches its success while
spending extra turns on the unambiguous controls too.
"""

from __future__ import annotations

import pytest

from conftest import format_table, write_results
from repro.core import AnswerKind, CDAEngine, ReliabilityConfig
from repro.datasets.registry import DataSourceRegistry
from repro.guidance import SimulatedUser, UserGoal
from repro.guidance.clarification import ClarificationMode
from repro.sqldb import Database
from repro.sqldb.table import Table

POLICIES = ("never", "when_ambiguous", "always")


def build_domain() -> DataSourceRegistry:
    """Two mirrored sales channels: the irreducible-ambiguity domain."""
    database = Database()
    registry = DataSourceRegistry(database)
    channels = {
        "store_sales": [(1, "north", 120.0), (2, "south", 80.0), (3, "north", 200.0)],
        "online_sales": [(1, "north", 60.0), (2, "south", 300.0), (3, "south", 90.0)],
    }
    for name, rows in channels.items():
        table = Table.from_records(
            name,
            [
                {"sale_id": sale_id, "region": region, "amount": amount}
                for sale_id, region, amount in rows
            ],
            description=f"{name.replace('_', ' ')} transactions",
        )
        registry.register_table(table, description=table.description)
    staff = Table.from_records(
        "staff",
        [{"staff_id": i, "role": role} for i, role in enumerate(["clerk", "manager", "clerk"], 1)],
        description="store staff directory",
    )
    registry.register_table(staff, description=staff.description)
    return registry


def make_goals(registry: DataSourceRegistry) -> list[UserGoal]:
    db = registry.database

    def gold(sql):
        return list(db.execute(sql).rows)

    ambiguous = []
    for channel in ("store_sales", "online_sales"):
        ambiguous.extend(
            [
                UserGoal(
                    clear_question=f"what is the total amount of {channel.replace('_', ' ')}",
                    vague_question="what is the total amount of the sales",
                    gold_sql=f"SELECT SUM(amount) AS sum_amount FROM {channel}",
                    gold_rows=gold(f"SELECT SUM(amount) AS sum_amount FROM {channel}"),
                    target_terms=[channel],
                ),
                UserGoal(
                    clear_question=f"how many {channel.replace('_', ' ')} are there",
                    vague_question="how many sales are there",
                    gold_sql=f"SELECT COUNT(*) AS count_all FROM {channel}",
                    gold_rows=gold(f"SELECT COUNT(*) AS count_all FROM {channel}"),
                    target_terms=[channel],
                ),
            ]
        )
    controls = [
        UserGoal(
            clear_question="how many staff are there",
            vague_question="how many staff are there",
            gold_sql="SELECT COUNT(*) AS count_all FROM staff",
            gold_rows=gold("SELECT COUNT(*) AS count_all FROM staff"),
            target_terms=["staff"],
        ),
        UserGoal(
            clear_question="what is the average amount of store sales",
            vague_question="what is the average amount of store sales",
            gold_sql="SELECT AVG(amount) AS avg_amount FROM store_sales",
            gold_rows=gold("SELECT AVG(amount) AS avg_amount FROM store_sales"),
            target_terms=["store_sales"],
        ),
    ]
    return ambiguous + controls


def run_dialogue(engine: CDAEngine, user: SimulatedUser):
    """One-shot dialogue: ask, answer a clarification if posed, judge."""
    answer = engine.ask(user.opening_question())
    for _ in range(3):
        if answer.kind is AnswerKind.CLARIFICATION and answer.clarification:
            answer = engine.ask(user.answer_clarification(answer.clarification))
        else:
            break
    if answer.kind is AnswerKind.DATA:
        return user.judge_answer(answer.rows), user.turns_spoken
    return False, user.turns_spoken


def run_policy(policy: str):
    successes = 0
    turns = []
    registry_template = build_domain()
    goals = make_goals(registry_template)
    for goal in goals:
        registry = build_domain()
        config = ReliabilityConfig(clarification_mode=ClarificationMode(policy))
        engine = CDAEngine(registry, config=config)
        user = SimulatedUser(goal, ambiguous_opening=True, patience=5)
        success, spoken = run_dialogue(engine, user)
        successes += 1 if success else 0
        turns.append(spoken)
    return successes / len(goals), sum(turns) / len(turns)


def test_e6_guided_dialogues(benchmark):
    rows = []
    stats = {}
    for policy in POLICIES:
        success, turns = run_policy(policy)
        stats[policy] = (success, turns)
        rows.append([policy, f"{success:.2f}", f"{turns:.1f}"])

    write_results(
        "e6_guidance",
        format_table(
            ["clarification policy", "success rate", "mean user turns"],
            rows,
            title=(
                "E6: dialogues over irreducibly-ambiguous questions "
                "(4 ambiguous + 2 control goals)"
            ),
        ),
    )

    registry = build_domain()
    engine = CDAEngine(registry)
    benchmark(lambda: engine.ask("how many staff are there"))

    # Shape: asking resolves what guessing cannot; always-ask pays extra
    # turns for the same success.
    assert stats["when_ambiguous"][0] > stats["never"][0]
    assert stats["when_ambiguous"][0] == stats["always"][0]
    assert stats["never"][1] < stats["when_ambiguous"][1]
    assert stats["when_ambiguous"][1] < stats["always"][1]
