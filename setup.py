"""Legacy setup shim.

The execution environment is offline and has setuptools without ``wheel``,
so PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the classic
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
