"""Hypothesis property tests over core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.seasonality import autocorrelation
from repro.benchgen.metrics import execution_accuracy
from repro.kg.triple_store import TripleStore
from repro.kg.vocabulary import edit_similarity, token_overlap, trigram_similarity
from repro.provenance.semiring import Polynomial
from repro.soundness.calibration import (
    IsotonicCalibrator,
    brier_score,
    expected_calibration_error,
)
from repro.sqldb import Database
from repro.vector.base import recall_at_k
from repro.vector.distance import Metric, pairwise_distances

# ---------------------------------------------------------------------------
# Provenance semiring laws
# ---------------------------------------------------------------------------

variables = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def polynomials(draw, max_terms=3):
    poly = Polynomial.zero()
    for _ in range(draw(st.integers(0, max_terms))):
        term = Polynomial.var(draw(variables))
        for _ in range(draw(st.integers(0, 2))):
            term = term * Polynomial.var(draw(variables))
        poly = poly + term
    return poly


class TestSemiringLaws:
    @given(polynomials(), polynomials())
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials())
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associative(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials(), polynomials(), polynomials())
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials())
    def test_identities(self, p):
        assert p + Polynomial.zero() == p
        assert p * Polynomial.one() == p
        assert (p * Polynomial.zero()).is_zero

    @given(polynomials(), st.dictionaries(variables, st.integers(0, 5), min_size=4))
    def test_evaluation_is_homomorphism(self, p, assignment):
        # evaluate(p + p) == evaluate(p) + evaluate(p) in the counting semiring
        doubled = p + p
        assert doubled.evaluate(assignment) == 2 * p.evaluate(assignment)


# ---------------------------------------------------------------------------
# Triple store axioms
# ---------------------------------------------------------------------------

subjects = st.sampled_from(["s1", "s2", "s3"])
predicates = st.sampled_from(["p1", "p2"])
objects = st.sampled_from(["o1", "o2", 1, 2, True])


class TestTripleStoreAxioms:
    @given(st.lists(st.tuples(subjects, predicates, objects), max_size=20))
    def test_match_wildcards_consistent_with_full_scan(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        everything = set(store.match())
        for s in ("s1", "s2", "s3"):
            expected = {t for t in everything if t.subject == s}
            assert set(store.match(subject=s)) == expected
        for p in ("p1", "p2"):
            expected = {t for t in everything if t.predicate == p}
            assert set(store.match(predicate=p)) == expected

    @given(st.lists(st.tuples(subjects, predicates, objects), max_size=20))
    def test_add_remove_roundtrip(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        for s, p, o in triples:
            store.remove(s, p, o)
        assert len(store) == 0
        assert store.match() == []

    @given(st.lists(st.tuples(subjects, predicates, objects), max_size=20))
    def test_set_semantics(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
            store.add(s, p, o)
        assert len(store) == len({(s, p, o) for s, p, o in triples})


# ---------------------------------------------------------------------------
# Similarity kernels
# ---------------------------------------------------------------------------

words = st.text(alphabet="abcdefgh", min_size=1, max_size=10)


class TestSimilarityKernelProperties:
    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_similarity(a, b) == edit_similarity(b, a)
        assert trigram_similarity(a, b) == trigram_similarity(b, a)
        assert token_overlap(a, b) == token_overlap(b, a)

    @given(words)
    def test_identity(self, a):
        assert edit_similarity(a, a) == 1.0
        assert trigram_similarity(a, a) == 1.0

    @given(words, words)
    def test_bounds(self, a, b):
        for kernel in (edit_similarity, trigram_similarity, token_overlap):
            value = kernel(a, b)
            assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# SQL engine invariants
# ---------------------------------------------------------------------------

small_ints = st.integers(-100, 100)
rows_strategy = st.lists(
    st.tuples(small_ints, st.sampled_from(["x", "y", "z"])), min_size=0, max_size=25
)


def build_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (v INT, g TEXT)")
    table = db.catalog.table("t")
    for value, group in rows:
        table.insert([value, group])
    return db


class TestSQLInvariants:
    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_count_matches_python(self, rows):
        db = build_db(rows)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_python(self, rows):
        db = build_db(rows)
        result = db.execute("SELECT SUM(v) FROM t").scalar()
        expected = sum(v for v, _g in rows) if rows else None
        assert result == expected

    @given(rows_strategy, small_ints)
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_python(self, rows, threshold):
        db = build_db(rows)
        result = db.execute(f"SELECT COUNT(*) FROM t WHERE v > {threshold}").scalar()
        assert result == sum(1 for v, _g in rows if v > threshold)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_counts_partition_total(self, rows):
        db = build_db(rows)
        grouped = db.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert sum(count for _g, count in grouped.rows) == len(rows)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_lineage_covers_exactly_matching_rows(self, rows):
        db = build_db(rows)
        result = db.execute("SELECT v FROM t WHERE v >= 0")
        matching = sum(1 for v, _g in rows if v >= 0)
        assert len(result.rows) == matching
        cited = result.all_source_rows()
        assert len(cited) == matching

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_order_by_is_sorted(self, rows):
        db = build_db(rows)
        values = [v for (v,) in db.execute("SELECT v FROM t ORDER BY v ASC").rows]
        assert values == sorted(values)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct_removes_duplicates_only(self, rows):
        db = build_db(rows)
        distinct = db.execute("SELECT DISTINCT v FROM t").rows
        assert sorted(v for (v,) in distinct) == sorted({v for v, _g in rows})


# ---------------------------------------------------------------------------
# Calibration invariants
# ---------------------------------------------------------------------------


class TestCalibrationProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.integers(0, 1)), min_size=5, max_size=80
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_metrics_bounded(self, pairs):
        confidences = [c for c, _o in pairs]
        outcomes = [float(o) for _c, o in pairs]
        assert 0.0 <= expected_calibration_error(confidences, outcomes) <= 1.0
        assert 0.0 <= brier_score(confidences, outcomes) <= 1.0

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.integers(0, 1)), min_size=10, max_size=80
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_isotonic_output_is_probability_and_monotone(self, pairs):
        confidences = np.array([c for c, _o in pairs])
        outcomes = np.array([float(o) for _c, o in pairs])
        calibrator = IsotonicCalibrator().fit(confidences, outcomes)
        grid = np.linspace(0, 1, 21)
        transformed = calibrator.transform(grid)
        assert np.all(transformed >= 0.0)
        assert np.all(transformed <= 1.0)
        assert np.all(np.diff(transformed) >= -1e-12)


# ---------------------------------------------------------------------------
# Vector-search invariants
# ---------------------------------------------------------------------------


class TestVectorProperties:
    @given(st.integers(2, 30), st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_distances_nonnegative_and_self_zero(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, dim))
        distances = pairwise_distances(data[0], data, Metric.L2)
        assert np.all(distances >= 0)
        assert distances[0] == 0.0

    @given(st.integers(1, 10))
    def test_recall_of_identical_lists_is_one(self, k):
        ids = list(range(k))
        assert recall_at_k(ids, ids) == 1.0

    @given(st.lists(st.integers(), max_size=10, unique=True))
    def test_recall_bounds(self, exact):
        assert 0.0 <= recall_at_k([], exact) <= 1.0


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

tuples_of_ints = st.lists(st.tuples(small_ints), max_size=8)


class TestMetricProperties:
    @given(tuples_of_ints)
    def test_execution_accuracy_reflexive(self, rows):
        assert execution_accuracy(rows, rows)
        assert execution_accuracy(rows, rows, ordered=True)

    @given(tuples_of_ints, tuples_of_ints)
    def test_execution_accuracy_symmetric(self, a, b):
        assert execution_accuracy(a, b) == execution_accuracy(b, a)

    @given(st.lists(st.floats(-5, 5), min_size=4, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_acf_lag_zero_is_one(self, series):
        array = np.asarray(series)
        if np.std(array) == 0:
            return  # constant series: ACF degenerates, handled elsewhere
        acf = autocorrelation(array, min(5, len(array) - 1))
        assert acf[0] == 1.0
        assert np.all(np.abs(acf) <= 1.0 + 1e-9)


# ---------------------------------------------------------------------------
# Logical form -> SQL -> AST round trip
# ---------------------------------------------------------------------------

from repro.nl.grammar import AggregateSpec, FilterSpec, OrderSpec, QueryIntent
from repro.nl.sqlgen import compile_intent
from repro.sqldb.parser import parse_sql

column_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])
agg_functions = st.sampled_from(["SUM", "AVG", "MIN", "MAX"])
operators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
filter_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 3)),
    st.text(alphabet="abcxyz' ", min_size=1, max_size=8),
)


@st.composite
def intents(draw):
    use_group = draw(st.booleans())
    use_agg = use_group or draw(st.booleans())
    group_by = [draw(column_names)] if use_group else []
    aggregates = []
    if use_agg:
        if draw(st.booleans()):
            aggregates = [AggregateSpec(function="COUNT", column=None)]
        else:
            aggregates = [
                AggregateSpec(function=draw(agg_functions), column=draw(column_names))
            ]
    select_columns = []
    if not use_agg:
        select_columns = draw(
            st.lists(column_names, min_size=1, max_size=3, unique=True)
        )
    filters = draw(
        st.lists(
            st.builds(
                FilterSpec,
                column=column_names,
                operator=operators,
                value=filter_values,
            ),
            max_size=3,
        )
    )
    order_by = None
    if draw(st.booleans()):
        target = group_by[0] if group_by else (
            aggregates[0].output_name if aggregates else select_columns[0]
        )
        order_by = OrderSpec(column=target, descending=draw(st.booleans()))
    limit = draw(st.one_of(st.none(), st.integers(1, 50)))
    return QueryIntent(
        table="t",
        select_columns=select_columns,
        aggregates=aggregates,
        filters=filters,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
    )


class TestIntentCompilationProperties:
    @given(intents())
    @settings(max_examples=80, deadline=None)
    def test_compiled_sql_parses_to_fixpoint(self, intent):
        # Compiled SQL must parse, and text -> AST -> text must be a
        # fixpoint after one normalisation pass (losslessness).  The
        # first pass may normalise spelling (e.g. -1 -> (-1)).
        sql = compile_intent(intent).to_sql()
        once = parse_sql(sql).to_sql()
        twice = parse_sql(once).to_sql()
        assert twice == once

    @given(intents())
    @settings(max_examples=40, deadline=None)
    def test_signature_stable_under_compile(self, intent):
        # Compiling must not mutate the intent.
        before = intent.signature()
        compile_intent(intent)
        assert intent.signature() == before
