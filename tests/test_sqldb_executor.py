"""Tests for query execution: semantics and provenance capture."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb import Database


class TestSelection:
    def test_where_filters(self, employees_db):
        rows = employees_db.execute(
            "SELECT name FROM employees WHERE salary > 85"
        ).rows
        assert sorted(rows) == [("ann",), ("bob",)]

    def test_null_rows_excluded_by_comparison(self, employees_db):
        rows = employees_db.execute(
            "SELECT name FROM employees WHERE salary < 1000"
        ).rows
        assert ("eve",) not in rows

    def test_is_null_filter(self, employees_db):
        result = employees_db.execute(
            "SELECT name FROM employees WHERE salary IS NULL"
        )
        assert result.rows == [("eve",)]

    def test_projection_expression(self, employees_db):
        result = employees_db.execute(
            "SELECT name, salary * 2 AS double_pay FROM employees WHERE id = 1"
        )
        assert result.columns == ["name", "double_pay"]
        assert result.rows == [("ann", 200.0)]

    def test_select_without_from(self, employees_db):
        assert employees_db.execute("SELECT 1 + 1").scalar() == 2

    def test_star_expansion(self, employees_db):
        result = employees_db.execute("SELECT * FROM departments")
        assert result.columns == ["department", "budget", "floor"]
        assert len(result.rows) == 2


class TestJoins:
    def test_inner_join(self, employees_db):
        result = employees_db.execute(
            "SELECT e.name, d.floor FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "WHERE e.city = 'zurich' ORDER BY e.name"
        )
        assert result.rows == [("ann", 3), ("cat", 2), ("eve", 2)]

    def test_left_join_keeps_unmatched(self):
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        db.execute("CREATE TABLE b (x INT, y TEXT)")
        db.execute("INSERT INTO b VALUES (1, 'one')")
        result = db.execute(
            "SELECT a.x, b.y FROM a LEFT JOIN b ON a.x = b.x ORDER BY a.x"
        )
        assert result.rows == [(1, "one"), (2, None)]

    def test_cross_join_cardinality(self, employees_db):
        result = employees_db.execute(
            "SELECT COUNT(*) FROM employees CROSS JOIN departments"
        )
        assert result.scalar() == 10

    def test_hash_join_matches_nested_loop(self, employees_db):
        # Equi-join uses the hash path; a non-equi condition forces the
        # nested loop.  Both must agree on equivalent predicates.
        fast = employees_db.execute(
            "SELECT e.id FROM employees e "
            "JOIN departments d ON e.department = d.department"
        )
        slow = employees_db.execute(
            "SELECT e.id FROM employees e "
            "JOIN departments d ON e.department = d.department AND 1 = 1"
        )
        assert sorted(fast.rows) == sorted(slow.rows)

    def test_join_null_keys_never_match(self):
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("INSERT INTO a VALUES (NULL), (1)")
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO b VALUES (NULL), (1)")
        result = db.execute("SELECT COUNT(*) FROM a JOIN b ON a.x = b.x")
        assert result.scalar() == 1


class TestAggregation:
    def test_global_aggregate(self, employees_db):
        assert employees_db.execute("SELECT COUNT(*) FROM employees").scalar() == 5

    def test_avg_skips_nulls(self, employees_db):
        assert employees_db.execute(
            "SELECT AVG(salary) FROM employees"
        ).scalar() == pytest.approx(85.0)

    def test_group_by(self, employees_db):
        result = employees_db.execute(
            "SELECT department, COUNT(*) AS n FROM employees "
            "GROUP BY department ORDER BY department"
        )
        assert result.rows == [("engineering", 2), ("sales", 3)]

    def test_having(self, employees_db):
        result = employees_db.execute(
            "SELECT department FROM employees GROUP BY department "
            "HAVING COUNT(*) > 2"
        )
        assert result.rows == [("sales",)]

    def test_having_without_group_rejected(self, employees_db):
        with pytest.raises(ExecutionError):
            employees_db.execute("SELECT name FROM employees HAVING name = 'x'")

    def test_empty_input_global_aggregates(self, employees_db):
        result = employees_db.execute(
            "SELECT COUNT(*), SUM(salary) FROM employees WHERE id > 100"
        )
        assert result.rows == [(0, None)]

    def test_non_grouped_column_rejected(self, employees_db):
        with pytest.raises(ExecutionError):
            employees_db.execute(
                "SELECT name, COUNT(*) FROM employees GROUP BY department"
            )

    def test_grouped_expression_allowed(self, employees_db):
        result = employees_db.execute(
            "SELECT UPPER(department), COUNT(*) FROM employees "
            "GROUP BY department ORDER BY department"
        )
        assert result.rows[0][0] == "ENGINEERING"

    def test_count_distinct(self, employees_db):
        assert employees_db.execute(
            "SELECT COUNT(DISTINCT city) FROM employees"
        ).scalar() == 3

    def test_order_by_aggregate_alias(self, employees_db):
        result = employees_db.execute(
            "SELECT department, SUM(salary) AS total FROM employees "
            "GROUP BY department ORDER BY total DESC"
        )
        assert result.rows[0][0] == "engineering"


class TestOrderingAndLimits:
    def test_order_asc_desc(self, employees_db):
        asc = employees_db.execute(
            "SELECT id FROM employees WHERE salary IS NOT NULL ORDER BY salary ASC"
        ).rows
        desc = employees_db.execute(
            "SELECT id FROM employees WHERE salary IS NOT NULL ORDER BY salary DESC"
        ).rows
        assert asc == list(reversed(desc))

    def test_nulls_sort_last_ascending(self, employees_db):
        rows = employees_db.execute(
            "SELECT name FROM employees ORDER BY salary ASC"
        ).rows
        assert rows[-1] == ("eve",)

    def test_multi_key_order(self, employees_db):
        rows = employees_db.execute(
            "SELECT city, name FROM employees ORDER BY city ASC, name DESC"
        ).rows
        assert rows[0][0] == "bern"
        zurich_names = [name for city, name in rows if city == "zurich"]
        assert zurich_names == sorted(zurich_names, reverse=True)

    def test_limit_offset(self, employees_db):
        rows = employees_db.execute(
            "SELECT id FROM employees ORDER BY id LIMIT 2 OFFSET 1"
        ).rows
        assert rows == [(2,), (3,)]

    def test_distinct(self, employees_db):
        rows = employees_db.execute(
            "SELECT DISTINCT city FROM employees ORDER BY city"
        ).rows
        assert rows == [("bern",), ("geneva",), ("zurich",)]

    def test_order_by_unselected_column(self, employees_db):
        rows = employees_db.execute(
            "SELECT name FROM employees WHERE salary IS NOT NULL ORDER BY salary DESC LIMIT 1"
        ).rows
        assert rows == [("ann",)]


class TestProvenance:
    def test_scan_lineage_is_singleton(self, employees_db):
        result = employees_db.execute("SELECT name FROM employees WHERE id = 1")
        assert result.lineage == [frozenset({("employees", 0)})]

    def test_join_lineage_unions_sides(self, employees_db):
        result = employees_db.execute(
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department WHERE e.id = 1"
        )
        assert result.lineage[0] == frozenset(
            {("employees", 0), ("departments", 0)}
        )

    def test_group_lineage_unions_members(self, employees_db):
        result = employees_db.execute(
            "SELECT department, COUNT(*) FROM employees "
            "GROUP BY department ORDER BY department"
        )
        engineering = result.lineage[0]
        assert engineering == frozenset({("employees", 0), ("employees", 1)})

    def test_distinct_merges_lineage(self, employees_db):
        result = employees_db.execute(
            "SELECT DISTINCT department FROM employees ORDER BY department"
        )
        sales = result.lineage[1]
        assert sales == frozenset(
            {("employees", 2), ("employees", 3), ("employees", 4)}
        )

    def test_how_provenance_join_is_product(self, employees_db):
        result = employees_db.execute(
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department WHERE e.id = 1"
        )
        assert str(result.how[0]) == "departments:0*employees:0"

    def test_how_provenance_group_is_sum(self, employees_db):
        result = employees_db.execute(
            "SELECT department, COUNT(*) FROM employees "
            "GROUP BY department ORDER BY department"
        )
        assert str(result.how[0]) == "employees:0 + employees:1"

    def test_lineage_capture_can_be_disabled(self):
        db = Database(capture_lineage=False)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        result = db.execute("SELECT x FROM t")
        assert result.lineage == [frozenset()]

    def test_scanned_rows_counted(self, employees_db):
        result = employees_db.execute("SELECT COUNT(*) FROM employees")
        assert result.scanned_rows == 5
