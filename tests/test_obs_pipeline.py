"""Telemetry pipeline: event log, scorecard, and standard exporters.

Covers the PR's acceptance criteria: ``Session.scorecard()`` returns
P1–P5 verdicts on a real multi-turn session, the Prometheus exposition
parses under its line-format rules, a Perfetto-loadable Chrome trace is
produced for an ``engine.ask`` span tree, and the CLI surfaces all
three (``--scorecard`` / ``--prometheus`` / ``--export-trace``).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.core import CDAEngine
from repro.obs import (
    EventLog,
    SLOThresholds,
    build_scorecard,
    chrome_trace_json,
    counter,
    get_event_log,
    get_registry,
    histogram,
    sanitize_metric_name,
    span,
    start_trace,
    to_chrome_trace,
    to_prometheus,
)

PROPS = ("P1", "P2", "P3", "P4", "P5")


@pytest.fixture
def engine(swiss_domain) -> CDAEngine:
    return CDAEngine(swiss_domain.registry, swiss_domain.vocabulary)


# -- event log ----------------------------------------------------------------


class TestEventLog:
    def test_emit_orders_and_filters(self):
        log = EventLog(capacity=16)
        log.emit("a.start")
        log.emit("a.retry", severity="warning", attempt=2)
        log.emit("b.done", severity="debug")
        names = [event.name for event in log]
        assert names == ["a.start", "a.retry", "b.done"]
        assert [e.name for e in log.events(prefix="a.")] == ["a.start", "a.retry"]
        assert [e.name for e in log.events(min_severity="warning")] == ["a.retry"]
        assert log.events(min_severity="warning")[0].attrs == {"attempt": 2}
        assert log.counts_by_severity() == {
            "debug": 1, "info": 1, "warning": 1, "error": 0,
        }

    def test_timestamps_are_monotone_and_relative(self):
        log = EventLog()
        first = log.emit("one")
        second = log.emit("two")
        assert 0 <= first.t_ns <= second.t_ns
        payload = log.to_dicts()
        assert payload[0]["t_ms"] <= payload[1]["t_ms"]
        assert json.loads(json.dumps(payload)) == payload

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit(f"event.{index}")
        assert len(log) == 3
        assert log.emitted == 5
        assert log.dropped == 2
        assert [event.name for event in log] == [
            "event.2", "event.3", "event.4",
        ]

    def test_invalid_severity_and_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("x", severity="loud")
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_subscribers_fan_out_and_failures_are_dropped(self):
        log = EventLog()
        seen: list[str] = []

        def bad(_event):
            raise RuntimeError("broken hook")

        log.subscribe(bad)
        log.subscribe(lambda event: seen.append(event.name))
        log.emit("first")   # bad hook fires once, then is ejected
        log.emit("second")  # must not raise
        assert seen == ["first", "second"]
        log.unsubscribe(bad)  # already gone: no-op

    def test_reset_keeps_subscribers_and_origin(self):
        log = EventLog()
        seen: list[str] = []
        log.subscribe(lambda event: seen.append(event.name))
        log.emit("before")
        log.reset()
        assert len(log) == 0 and log.emitted == 0 and log.dropped == 0
        log.emit("after")
        assert seen == ["before", "after"]

    def test_engine_turns_and_stages_reach_the_global_log(self, engine):
        log = get_event_log()
        engine.ask("how many employees are there")
        turns = log.events(prefix="engine.turn")
        assert len(turns) == 1
        assert turns[0].attrs["kind"] == "data"
        assert turns[0].attrs["seconds"] >= 0
        stages = log.events(prefix="engine.stage", min_severity="debug")
        assert {event.attrs["stage"] for event in stages} >= {
            "engine.intent", "engine.execution",
        }

    def test_cache_invalidation_emits_an_event(self):
        from repro.sqldb import Database

        db = Database(cache_size=8)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT id FROM t")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("SELECT id FROM t")
        invalidations = get_event_log().events(prefix="sqldb.cache.invalidation")
        assert len(invalidations) == 1
        assert "SELECT" in invalidations[0].attrs["sql"].upper()


# -- scorecard ----------------------------------------------------------------


def _seed_metrics(latency=0.01, hits=8, misses=2):
    """Populate the global registry with a healthy-looking session."""
    turn = histogram("core.engine.turn.latency")
    for _ in range(20):
        turn.observe(latency)
    counter("sqldb.cache.hits").inc(hits)
    counter("sqldb.cache.misses").inc(misses)
    counter("nl.ground.attempts").inc(10)
    counter("nl.ground.grounded").inc(9)
    for _ in range(9):
        histogram("nl.ground.confidence").observe(0.9)
    counter("core.engine.data_answers").inc(9)
    counter("core.engine.explained_answers").inc(9)
    counter("soundness.verifier.passed").inc(9)
    counter("guidance.suggestions.offered").inc(5)


class TestScorecard:
    def test_healthy_session_passes_every_property(self):
        _seed_metrics()
        session = {
            "questions_asked": 10, "answers_given": 9,
            "abstentions": 1, "clarifications_asked": 0,
        }
        card = build_scorecard(session)
        assert [verdict.prop for verdict in card.verdicts] == list(PROPS)
        for prop in PROPS:
            assert card.verdict(prop).status == "pass", card.verdict(prop)
        assert card.status == "pass"

    def test_slo_breach_fails_and_margin_warns(self):
        _seed_metrics(latency=0.2)  # p50 way over the 0.05 s SLO
        card = build_scorecard({"questions_asked": 1})
        assert card.verdict("P1").status == "fail"
        assert card.status == "fail"
        # Within the warn margin: 0.05 < p50 <= 0.05 * 1.2.
        get_registry().reset()
        _seed_metrics(latency=0.055)
        card = build_scorecard({"questions_asked": 1})
        assert card.verdict("P1").status == "warn"

    def test_no_data_skips_instead_of_failing(self):
        card = build_scorecard({})
        for prop in PROPS:
            assert card.verdict(prop).status == "skip"
        assert card.status == "skip"
        for verdict in card.verdicts:
            for check in verdict.checks:
                assert check.status == "skip"
                assert "no data" in check.describe()

    def test_cache_hit_rate_needs_minimum_lookups(self):
        counter("sqldb.cache.hits").inc(0)
        counter("sqldb.cache.misses").inc(2)  # below cache_min_lookups=5
        card = build_scorecard({})
        checks = {check.name: check for check in card.verdict("P1").checks}
        assert checks["query-cache hit rate"].status == "skip"
        counter("sqldb.cache.misses").inc(10)  # all misses, now judged
        card = build_scorecard({})
        checks = {check.name: check for check in card.verdict("P1").checks}
        assert checks["query-cache hit rate"].status == "fail"

    def test_abstention_rate_is_lower_is_better(self):
        card = build_scorecard({"questions_asked": 10, "abstentions": 9})
        checks = {check.name: check for check in card.verdict("P4").checks}
        assert checks["abstention rate"].status == "fail"
        assert checks["abstention rate"].direction == "<="

    def test_custom_thresholds_override_defaults(self):
        _seed_metrics()
        strict = SLOThresholds(turn_p50_seconds=1e-9, warn_margin=0.0)
        card = build_scorecard({"questions_asked": 1}, thresholds=strict)
        assert card.verdict("P1").status == "fail"

    def test_to_dict_is_json_ready_and_complete(self):
        _seed_metrics()
        card = build_scorecard({"questions_asked": 10, "answers_given": 9})
        payload = json.loads(json.dumps(card.to_dict()))
        assert payload["status"] == card.status
        assert [p["property"] for p in payload["properties"]] == list(PROPS)
        for prop in payload["properties"]:
            assert prop["title"]
            for check in prop["checks"]:
                assert check["status"] in {"pass", "warn", "fail", "skip"}

    def test_render_text_lists_every_property(self):
        _seed_metrics()
        report = build_scorecard({"questions_asked": 10}).render_text()
        for prop, title in zip(PROPS, (
            "Efficiency", "Grounding", "Explainability", "Soundness", "Guidance",
        )):
            assert f"{prop} {title}" in report
        assert report.splitlines()[-1].startswith("overall:")

    def test_unknown_property_raises(self):
        with pytest.raises(KeyError):
            build_scorecard({}).verdict("P9")


class TestScorecardOnRealSession:
    def test_multi_turn_session_yields_p1_to_p5_verdicts(self, engine):
        engine.ask("how many employees are there")
        engine.ask("how many cantons are there")
        engine.ask("what data do you have about employment")
        engine.ask("employment")  # resolve the discovery clarification
        card = engine.session.scorecard()
        assert [verdict.prop for verdict in card.verdicts] == list(PROPS)
        assert card.verdict("P2").status == "pass"   # groundings landed
        assert card.verdict("P3").status == "pass"   # answers explained
        assert card.verdict("P4").status == "pass"   # verifier passed
        assert card.verdict("P5").status == "pass"   # clarification resolved
        assert card.status in {"pass", "warn"}
        assert card.session["questions_asked"] == 3
        assert card.session["clarifications_asked"] == 1

    def test_engine_scorecard_uses_the_configured_slo(self, engine):
        engine.ask("how many employees are there")
        assert engine.config.slo.turn_p50_seconds == 0.05
        card = engine.scorecard()
        assert card.verdict("P1").checks[0].threshold == 0.05
        strict = SLOThresholds(turn_p50_seconds=1e-12, warn_margin=0.0)
        assert engine.scorecard(strict).verdict("P1").status == "fail"


# -- Prometheus exposition ----------------------------------------------------


_METRIC_LINE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)$'
)


def _parse_prometheus(text: str) -> dict[str, list[tuple[str | None, float]]]:
    """Validate the exposition line format; samples keyed by metric name."""
    assert text.endswith("\n"), "exposition must end with a newline"
    samples: dict[str, list[tuple[str | None, float]]] = {}
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert line.strip(), "blank lines are not emitted"
        match = _METRIC_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        name, le, value = match.groups()
        parsed = float("inf") if value == "+Inf" else float(value)
        samples.setdefault(name, []).append((le, parsed))
    return samples


class TestPrometheusExport:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("core.engine.turn.latency") == (
            "core_engine_turn_latency"
        )
        assert sanitize_metric_name("a.b", namespace="repro") == "repro_a_b"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("sp ace/slash") == "sp_ace_slash"

    def test_exposition_parses_under_line_format_rules(self):
        counter("sqldb.cache.hits").inc(3)
        get_registry().gauge("core.session.depth").set(2.5)
        h = histogram("core.engine.turn.latency")
        for value in (0.004, 0.02, 0.3):
            h.observe(value)
        text = to_prometheus()
        samples = _parse_prometheus(text)
        assert samples["repro_sqldb_cache_hits_total"] == [(None, 3.0)]
        assert samples["repro_core_session_depth"] == [(None, 2.5)]
        buckets = samples["repro_core_engine_turn_latency_bucket"]
        # Cumulative and closed with +Inf == observation count.
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 3.0
        assert samples["repro_core_engine_turn_latency_count"] == [(None, 3.0)]
        total = samples["repro_core_engine_turn_latency_sum"][0][1]
        assert total == pytest.approx(0.324)

    def test_type_headers_precede_samples(self):
        counter("a.count").inc()
        histogram("b.seconds").observe(1.0)
        lines = to_prometheus().splitlines()
        typed = [line for line in lines if line.startswith("# TYPE ")]
        assert "# TYPE repro_a_count_total counter" in typed
        assert "# TYPE repro_b_seconds histogram" in typed
        # Every sample's family has a TYPE line earlier in the output.
        families = {line.split()[2] for line in typed}
        assert len(families) == len(typed)  # one TYPE per family

    def test_custom_registry_and_empty_namespace(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("x.y").inc(7)
        text = to_prometheus(registry, namespace="")
        assert "x_y_total 7" in text
        assert "repro_" not in text


# -- Chrome trace export ------------------------------------------------------


class TestChromeTraceExport:
    def test_engine_ask_trace_is_perfetto_loadable(self, engine):
        answer = engine.ask("how many employees are there")
        document = to_chrome_trace(answer.trace)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["name"] == "process_name"
        slices = [event for event in events if event["ph"] == "X"]
        assert slices[0]["name"] == "engine.ask"
        assert slices[0]["ts"] == 0.0
        names = {event["name"] for event in slices}
        assert {"engine.intent", "engine.execution"} <= names
        for event in slices:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["cat"] == event["name"].split(".", 1)[0]
        # Children nest inside the root's time window.
        root_end = slices[0]["ts"] + slices[0]["dur"]
        for event in slices[1:]:
            assert event["ts"] + event["dur"] <= root_end + 1e-6
        # And the whole document is valid JSON.
        assert json.loads(chrome_trace_json(answer.trace)) == document

    def test_error_spans_carry_status_and_message(self):
        with start_trace("engine.ask") as root:
            try:
                with span("engine.execution"):
                    raise RuntimeError("exploded")
            except RuntimeError:
                pass
        events = to_chrome_trace(root)["traceEvents"]
        failed = next(e for e in events if e.get("name") == "engine.execution")
        assert failed["args"]["status"] == "error"
        assert failed["args"]["error"] == "RuntimeError: exploded"

    def test_attributes_are_coerced_to_json(self):
        with start_trace("root", rows=(1, 2)) as root:
            pass
        document = to_chrome_trace(root)
        args = document["traceEvents"][1]["args"]
        assert args["rows"] == [1, 2]
        json.dumps(document)  # must not raise


# -- CLI ----------------------------------------------------------------------


class TestCLI:
    def test_scorecard_prometheus_and_trace_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "turn.json"
        exit_code = main([
            "--domain", "swiss",
            "--ask", "how many employees are there",
            "--scorecard", "--prometheus",
            "--export-trace", str(trace_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Reliability scorecard" in output
        assert "P1 Efficiency" in output and "P5 Guidance" in output
        assert "repro_core_engine_turn_latency_count" in output
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"][1]["name"] == "engine.ask"
        exposition = output[output.index("# HELP"):output.index("trace written")]
        _parse_prometheus(exposition)  # the exposition block parses

    def test_export_trace_without_a_turn_reports_gracefully(self, tmp_path, capsys):
        from repro.__main__ import main, build_engine

        engine = build_engine("swiss", None)
        args = type("Args", (), {
            "scorecard": False, "prometheus": False,
            "export_trace": str(tmp_path / "missing.json"),
        })()
        from repro.__main__ import epilogue

        epilogue(engine, args, None)
        assert "no traced turn" in capsys.readouterr().out
