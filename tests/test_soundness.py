"""Tests for the soundness layer: UQ, calibration, verification, abstention."""

import numpy as np
import pytest

from repro.errors import AbstentionError, SoundnessError
from repro.nl import SimulatedLLM
from repro.nl.llmsim import LLMOutput
from repro.soundness import (
    AnswerVerifier,
    ConsistencyUQ,
    HistogramBinningCalibrator,
    IsotonicCalibrator,
    SelectiveAnsweringPolicy,
    area_under_risk_coverage,
    auroc,
    brier_score,
    expected_calibration_error,
    fuse_confidence,
    reliability_diagram,
    risk_coverage_curve,
)
from repro.soundness.abstention import accuracy_at_coverage

GOLD = "SELECT AVG(salary) AS avg_salary FROM employees WHERE department = 'sales'"


class TestConsistencyUQ:
    def test_unanimous_agreement(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        result = uq.assess_sql([GOLD, GOLD, GOLD])
        assert result.confidence == 1.0
        assert result.chosen is not None

    def test_semantic_equivalence_clusters_together(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        # Different SQL text, same answer.
        other = (
            "SELECT AVG(salary) AS avg_salary FROM employees "
            "WHERE department = 'sales' AND 1 = 1"
        )
        result = uq.assess_sql([GOLD, other])
        assert result.confidence == 1.0

    def test_disagreement_lowers_confidence(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        wrong = "SELECT MAX(salary) AS avg_salary FROM employees"
        result = uq.assess_sql([GOLD, GOLD, wrong])
        assert result.confidence == pytest.approx(2 / 3)

    def test_invalid_candidates_count_against_confidence(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        result = uq.assess_sql([GOLD, "SELCT broken", "also broken"])
        assert result.confidence == pytest.approx(1 / 3)
        assert result.n_valid == 1

    def test_all_invalid_abstains(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        result = uq.assess_sql(["broken", "also broken"])
        assert result.abstained
        assert result.confidence == 0.0

    def test_majority_rows_returned(self, employees_db):
        uq = ConsistencyUQ(employees_db)
        result = uq.assess_sql([GOLD, GOLD])
        assert result.majority_rows == [(75.0,)]

    def test_empty_candidates_rejected(self, employees_db):
        with pytest.raises(SoundnessError):
            ConsistencyUQ(employees_db).assess([])

    def test_agreement_discriminates_better_than_self_report(self, employees_db):
        """The E3 claim in miniature: consistency AUROC > self-report AUROC."""
        llm = SimulatedLLM(employees_db.catalog, error_rate=0.4, seed=13)
        uq = ConsistencyUQ(employees_db)
        self_conf, cons_conf, correct = [], [], []
        for index in range(40):
            outputs = llm.generate_sql(f"question {index}", GOLD, n_samples=5)
            vote = uq.assess(outputs)
            self_conf.append(outputs[0].self_confidence)
            cons_conf.append(vote.confidence)
            correct.append(
                1.0 if vote.chosen is not None and vote.chosen.is_faithful else 0.0
            )
        assert auroc(cons_conf, correct) > auroc(self_conf, correct)


class TestCalibrationMetrics:
    def test_perfect_calibration_zero_ece(self):
        rng = np.random.default_rng(0)
        confidences = rng.uniform(0.05, 0.95, size=4000)
        outcomes = (rng.random(4000) < confidences).astype(float)
        assert expected_calibration_error(confidences, outcomes) < 0.05

    def test_overconfidence_detected(self):
        confidences = np.full(100, 0.9)
        outcomes = np.array([1.0] * 50 + [0.0] * 50)
        assert expected_calibration_error(confidences, outcomes) == pytest.approx(0.4)

    def test_brier_score_bounds(self):
        assert brier_score([1.0, 0.0], [1.0, 0.0]) == 0.0
        assert brier_score([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_auroc_perfect_ranking(self):
        assert auroc([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == 1.0

    def test_auroc_inverted_ranking(self):
        assert auroc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_auroc_ties_give_half(self):
        assert auroc([0.5, 0.5], [1, 0]) == pytest.approx(0.5)

    def test_auroc_degenerate(self):
        assert auroc([0.5, 0.6], [1, 1]) == 0.5

    def test_reliability_diagram_masses(self):
        bins = reliability_diagram([0.05, 0.95, 0.96], [0, 1, 1], n_bins=10)
        assert sum(b.count for b in bins) == 3
        assert bins[-1].count == 2

    def test_input_validation(self):
        with pytest.raises(SoundnessError):
            expected_calibration_error([1.5], [1])
        with pytest.raises(SoundnessError):
            expected_calibration_error([0.5], [2])
        with pytest.raises(SoundnessError):
            expected_calibration_error([], [])


class TestRecalibration:
    def make_overconfident(self, n=2000):
        rng = np.random.default_rng(1)
        confidences = rng.uniform(0.6, 0.99, size=n)
        true_probability = (confidences - 0.5) * 0.8  # actual accuracy lower
        outcomes = (rng.random(n) < true_probability).astype(float)
        return confidences, outcomes

    def test_histogram_binning_reduces_ece(self):
        confidences, outcomes = self.make_overconfident()
        calibrator = HistogramBinningCalibrator().fit(
            confidences[:1000], outcomes[:1000]
        )
        raw = expected_calibration_error(confidences[1000:], outcomes[1000:])
        calibrated = expected_calibration_error(
            calibrator.transform(confidences[1000:]), outcomes[1000:]
        )
        assert calibrated < raw / 2

    def test_isotonic_reduces_ece(self):
        confidences, outcomes = self.make_overconfident()
        calibrator = IsotonicCalibrator().fit(confidences[:1000], outcomes[:1000])
        raw = expected_calibration_error(confidences[1000:], outcomes[1000:])
        calibrated = expected_calibration_error(
            calibrator.transform(confidences[1000:]), outcomes[1000:]
        )
        assert calibrated < raw / 2

    def test_isotonic_is_monotone(self):
        confidences, outcomes = self.make_overconfident()
        calibrator = IsotonicCalibrator().fit(confidences, outcomes)
        grid = np.linspace(0, 1, 50)
        transformed = calibrator.transform(grid)
        assert np.all(np.diff(transformed) >= -1e-12)

    def test_unfitted_calibrator_raises(self):
        with pytest.raises(SoundnessError):
            IsotonicCalibrator().transform([0.5])
        with pytest.raises(SoundnessError):
            HistogramBinningCalibrator().transform([0.5])


class TestVerifier:
    def test_correct_answer_passes_all_depths(self, employees_db):
        result = employees_db.execute(GOLD)
        verifier = AnswerVerifier(employees_db)
        for depth in ("static", "reexecution", "provenance"):
            assert verifier.verify(result, depth=depth).passed

    def test_static_catches_schema_hallucination(self, employees_db):
        result = employees_db.execute(GOLD)
        result.sql = "SELECT bogus_column FROM employees"
        report = AnswerVerifier(employees_db).verify(result, depth="static")
        assert not report.passed

    def test_reexecution_catches_tampered_rows(self, employees_db):
        result = employees_db.execute(GOLD)
        result.rows = [(999.0,)]
        report = AnswerVerifier(employees_db).verify(result, depth="reexecution")
        assert not report.passed
        assert any("different rows" in issue for issue in report.issues)

    def test_provenance_recomputes_aggregate(self, employees_db):
        result = employees_db.execute(GOLD)
        report = AnswerVerifier(employees_db).verify(result, depth="provenance")
        assert any("recompute aggregate" in check for check in report.checks_run)

    def test_provenance_catches_missing_lineage(self, employees_db):
        result = employees_db.execute("SELECT name FROM employees WHERE id = 1")
        result.lineage = []
        report = AnswerVerifier(employees_db).verify(result, depth="provenance")
        assert not report.passed

    def test_provenance_checks_filters_on_cited_rows(self, employees_db):
        result = employees_db.execute(
            "SELECT name FROM employees WHERE city = 'zurich'"
        )
        # Claim a bern row supports a zurich answer.
        result.lineage = [frozenset({("employees", 1)})] * len(result.rows)
        report = AnswerVerifier(employees_db).verify(result, depth="provenance")
        assert not report.passed
        assert any("WHERE clause" in issue for issue in report.issues)

    def test_invalid_depth_rejected(self, employees_db):
        result = employees_db.execute(GOLD)
        with pytest.raises(SoundnessError):
            AnswerVerifier(employees_db).verify(result, depth="bogus")


class TestConfidenceFusion:
    def test_consistency_preferred_over_self_report(self):
        breakdown = fuse_confidence(self_reported=0.99, consistency=0.4)
        assert breakdown.value == pytest.approx(0.4)

    def test_grounding_scales(self):
        high = fuse_confidence(consistency=0.8, grounding=1.0)
        low = fuse_confidence(consistency=0.8, grounding=0.2)
        assert high.value > low.value

    def test_failed_verification_collapses(self):
        breakdown = fuse_confidence(consistency=0.95, verification_passed=False)
        assert breakdown.value <= 0.05

    def test_passed_verification_keeps_value(self):
        breakdown = fuse_confidence(consistency=0.8, verification_passed=True)
        assert breakdown.value == pytest.approx(0.8)

    def test_requires_some_signal(self):
        with pytest.raises(SoundnessError):
            fuse_confidence()

    def test_unit_interval_validation(self):
        with pytest.raises(SoundnessError):
            fuse_confidence(self_reported=1.2)

    def test_describe_mentions_parts(self):
        breakdown = fuse_confidence(self_reported=0.7, grounding=0.9)
        text = breakdown.describe()
        assert "self_reported" in text
        assert "grounding" in text


class TestAbstention:
    def test_threshold_decision(self):
        policy = SelectiveAnsweringPolicy(threshold=0.6)
        assert policy.decide(0.7).answered
        assert policy.decide(0.5).abstained

    def test_failed_verification_forces_abstention(self):
        policy = SelectiveAnsweringPolicy(threshold=0.1)
        assert policy.decide(0.99, verification_passed=False).abstained

    def test_require_answer_raises(self):
        policy = SelectiveAnsweringPolicy(threshold=0.9)
        with pytest.raises(AbstentionError) as excinfo:
            policy.require_answer(0.2)
        assert excinfo.value.confidence == 0.2
        assert excinfo.value.threshold == 0.9

    def test_risk_coverage_monotone_coverage(self):
        rng = np.random.default_rng(2)
        confidences = rng.uniform(size=300)
        correct = (rng.random(300) < confidences).astype(float)
        points = risk_coverage_curve(confidences, correct)
        coverages = [point.coverage for point in points]
        assert coverages == sorted(coverages, reverse=True)

    def test_informative_confidence_beats_random_aurc(self):
        rng = np.random.default_rng(3)
        true_probability = rng.uniform(size=500)
        correct = (rng.random(500) < true_probability).astype(float)
        informed = risk_coverage_curve(true_probability, correct)
        random_conf = rng.uniform(size=500)
        uninformed = risk_coverage_curve(random_conf, correct)
        assert area_under_risk_coverage(informed) < area_under_risk_coverage(uninformed)

    def test_accuracy_at_coverage(self):
        points = risk_coverage_curve([0.9, 0.8, 0.2], [1, 1, 0])
        assert accuracy_at_coverage(points, 0.6) == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(SoundnessError):
            SelectiveAnsweringPolicy(threshold=1.5)


class TestRowVerification:
    def test_grouped_aggregate_rows_verify(self, employees_db):
        from repro.soundness.verifier import verify_rows

        result = employees_db.execute(
            "SELECT department, SUM(salary) AS total FROM employees "
            "GROUP BY department ORDER BY department"
        )
        verdicts = verify_rows(employees_db, result)
        assert verdicts is not None
        assert all(verdict.verified for verdict in verdicts)
        assert len(verdicts) == 2

    def test_tampered_row_flagged_individually(self, employees_db):
        from repro.soundness.verifier import verify_rows

        result = employees_db.execute(
            "SELECT department, COUNT(*) AS n FROM employees "
            "GROUP BY department ORDER BY department"
        )
        tampered = list(result.rows)
        tampered[1] = (tampered[1][0], 999)
        result.rows = tampered
        verdicts = verify_rows(employees_db, result)
        assert verdicts[0].verified
        assert not verdicts[1].verified
        assert "999" in verdicts[1].detail

    def test_unverifiable_shapes_return_none(self, employees_db):
        from repro.soundness.verifier import verify_rows

        joined = employees_db.execute(
            "SELECT e.department, COUNT(*) FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "GROUP BY e.department"
        )
        assert verify_rows(employees_db, joined) is None
        plain = employees_db.execute("SELECT name FROM employees")
        assert verify_rows(employees_db, plain) is None

    def test_engine_attaches_row_verification(self):
        from repro.core import CDAEngine
        from repro.datasets import build_swiss_labour_registry

        domain = build_swiss_labour_registry(seed=5)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        answer = engine.ask("what is the average employees for each sector")
        assert answer.metadata.get("row_verification") is not None
        assert all(answer.metadata["row_verification"])
