"""Tests for the simulated LLM, constrained decoding, generation, paraphrase."""

import numpy as np
import pytest

from repro.errors import ConstrainedDecodingError, NLError
from repro.kg import DomainVocabulary, VocabularyTerm
from repro.nl import (
    AggregateSpec,
    AnswerGenerator,
    ConstrainedDecoder,
    ParaphraseGenerator,
    QueryIntent,
    SimulatedLLM,
    SQLValidator,
)
from repro.nl.llmsim import LLMOutput

GOLD = "SELECT COUNT(*) AS count_all FROM employees WHERE city = 'zurich'"


@pytest.fixture
def llm(employees_db):
    return SimulatedLLM(employees_db.catalog, error_rate=0.4, seed=5)


class TestSimulatedLLM:
    def test_determinism(self, employees_db):
        a = SimulatedLLM(employees_db.catalog, error_rate=0.4, seed=5)
        b = SimulatedLLM(employees_db.catalog, error_rate=0.4, seed=5)
        out_a = a.generate_sql("q", GOLD, n_samples=4)
        out_b = b.generate_sql("q", GOLD, n_samples=4)
        assert [o.sql for o in out_a] == [o.sql for o in out_b]

    def test_knows_is_stable_per_question(self, llm):
        assert llm.knows("some question") == llm.knows("some question")

    def test_error_rate_zero_always_faithful(self, employees_db):
        llm = SimulatedLLM(employees_db.catalog, error_rate=0.0, sample_fidelity=1.0)
        outputs = llm.generate_sql("q", GOLD, n_samples=10)
        assert all(output.is_faithful for output in outputs)
        assert all(output.sql == GOLD for output in outputs)

    def test_error_rate_one_never_faithful(self, employees_db):
        llm = SimulatedLLM(employees_db.catalog, error_rate=1.0)
        outputs = llm.generate_sql("q", GOLD, n_samples=10)
        assert not any(output.is_faithful for output in outputs)
        assert all(output.sql != GOLD for output in outputs)

    def test_empirical_error_rate_tracks_parameter(self, employees_db):
        llm = SimulatedLLM(employees_db.catalog, error_rate=0.3, seed=1)
        knows = [llm.knows(f"question {i}") for i in range(300)]
        assert 0.6 <= np.mean(knows) <= 0.8

    def test_mutations_are_plausible_or_syntax_errors(self, employees_db):
        from repro.sqldb.parser import parse_sql

        llm = SimulatedLLM(employees_db.catalog, error_rate=1.0, seed=2)
        outputs = llm.generate_sql("q", GOLD, n_samples=20)
        for output in outputs:
            assert output.mutation is not None
            if output.mutation != "syntax_error":
                parse_sql(output.sql)  # must stay parseable

    def test_self_confidence_is_overconfident(self, employees_db):
        llm = SimulatedLLM(employees_db.catalog, error_rate=0.5, seed=3)
        confidences = []
        for i in range(100):
            outputs = llm.generate_sql(f"q{i}", GOLD, n_samples=1)
            confidences.append(outputs[0].self_confidence)
        # Mean self-report way above the 50% actual knowledge rate.
        assert np.mean(confidences) > 0.7

    def test_parameter_validation(self, employees_db):
        with pytest.raises(NLError):
            SimulatedLLM(employees_db.catalog, error_rate=1.5)

    def test_call_counter(self, llm):
        before = llm.calls
        llm.generate_sql("q", GOLD, n_samples=3)
        assert llm.calls == before + 3


class TestSQLValidator:
    def test_valid_sql_passes(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate(GOLD)
        assert report.valid

    def test_parse_error_caught(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate("SELCT x FROM t")
        assert not report.valid
        assert "parse" in report.problems[0]

    def test_unknown_table(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate("SELECT x FROM nope")
        assert any("unknown table" in problem for problem in report.problems)

    def test_unknown_column(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate(
            "SELECT bogus FROM employees"
        )
        assert any("unknown column" in problem for problem in report.problems)

    def test_ambiguous_column(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate(
            "SELECT department FROM employees "
            "JOIN departments ON employees.department = departments.department"
        )
        assert any("ambiguous" in problem for problem in report.problems)

    def test_order_by_output_alias_allowed(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate(
            "SELECT department, COUNT(*) AS n FROM employees "
            "GROUP BY department ORDER BY n"
        )
        assert report.valid

    def test_aggregate_in_where_rejected(self, employees_db):
        report = SQLValidator(employees_db.catalog).validate(
            "SELECT id FROM employees WHERE COUNT(*) > 1"
        )
        assert not report.valid


class TestConstrainedDecoder:
    def test_first_valid_candidate_wins(self, employees_db):
        decoder = ConstrainedDecoder(SQLValidator(employees_db.catalog))
        candidates = [
            LLMOutput(sql="SELCT broken", self_confidence=0.9),
            LLMOutput(sql=GOLD, self_confidence=0.8),
        ]
        result = decoder.decode(candidates)
        assert result.output.sql == GOLD
        assert result.attempts == 2
        assert len(result.rejected) == 1

    def test_all_invalid_raises(self, employees_db):
        decoder = ConstrainedDecoder(SQLValidator(employees_db.catalog))
        with pytest.raises(ConstrainedDecodingError):
            decoder.decode([LLMOutput(sql="nope", self_confidence=0.5)])

    def test_rejection_sampling_eventually_valid(self, employees_db):
        llm = SimulatedLLM(employees_db.catalog, error_rate=0.8, seed=9)
        decoder = ConstrainedDecoder(SQLValidator(employees_db.catalog))
        result = decoder.rejection_sample(llm, "hard question", GOLD, max_attempts=16)
        assert SQLValidator(employees_db.catalog).validate(result.output.sql).valid


class TestAnswerGenerator:
    def test_scalar_answer(self, employees_db):
        generator = AnswerGenerator()
        intent = QueryIntent(
            table="employees", aggregates=[AggregateSpec("COUNT", None)]
        )
        result = employees_db.execute("SELECT COUNT(*) FROM employees")
        text = generator.render_answer(intent, result)
        assert "5" in text

    def test_empty_answer_mentions_nothing_found(self, employees_db):
        generator = AnswerGenerator()
        intent = QueryIntent(table="employees", select_columns=["name"])
        result = employees_db.execute("SELECT name FROM employees WHERE id > 99")
        assert "No rows" in generator.render_answer(intent, result)

    def test_grouped_answer_lists_groups(self, employees_db):
        generator = AnswerGenerator()
        intent = QueryIntent(
            table="employees",
            aggregates=[AggregateSpec("AVG", "salary")],
            group_by=["department"],
        )
        result = employees_db.execute(
            "SELECT department, AVG(salary) AS avg_salary FROM employees "
            "GROUP BY department ORDER BY department"
        )
        text = generator.render_answer(intent, result)
        assert "engineering" in text
        assert "sales" in text

    def test_table_answer_truncates(self, employees_db):
        generator = AnswerGenerator(max_rows_in_prose=2)
        intent = QueryIntent(table="employees", select_columns=["name"])
        result = employees_db.execute("SELECT name FROM employees")
        text = generator.render_answer(intent, result)
        assert "3 more row(s)" in text

    def test_every_number_in_prose_comes_from_result(self, employees_db):
        # Faithfulness by construction: values in the text are result values.
        generator = AnswerGenerator()
        intent = QueryIntent(
            table="employees", aggregates=[AggregateSpec("SUM", "salary")]
        )
        result = employees_db.execute("SELECT SUM(salary) FROM employees")
        text = generator.render_answer(intent, result)
        assert "340" in text

    def test_clarification_rendering(self):
        generator = AnswerGenerator()
        text = generator.render_clarification("q", ["barometer", "employment"])
        assert "barometer" in text
        assert "employment" in text

    def test_abstention_rendering(self):
        text = AnswerGenerator().render_abstention(0.3, 0.6)
        assert "0.30" in text
        assert "0.60" in text

    def test_dataset_suggestions_rendering(self):
        text = AnswerGenerator().render_dataset_suggestions(
            "workforce", [("employment", "desc here", 0.5)]
        )
        assert "employment" in text
        assert "Which one" in text


class TestParaphrase:
    def test_zero_strength_is_identity(self):
        generator = ParaphraseGenerator(rng=np.random.default_rng(0))
        question = "how many employees are there"
        assert generator.paraphrase(question, strength=0.0) == question

    def test_noise_changes_text(self):
        generator = ParaphraseGenerator(rng=np.random.default_rng(0))
        question = "what is the average salary of employees"
        noised = [generator.paraphrase(question, strength=1.0) for _ in range(5)]
        assert any(text != question for text in noised)

    def test_synonym_substitution_uses_vocabulary(self):
        vocabulary = DomainVocabulary()
        vocabulary.add_term(
            VocabularyTerm(name="employees", synonyms=["workforce"])
        )
        generator = ParaphraseGenerator(
            vocabulary=vocabulary, rng=np.random.default_rng(1)
        )
        results = {
            generator.paraphrase("how many employees are there", strength=1.0)
            for _ in range(10)
        }
        assert any("workforce" in text for text in results)

    def test_deterministic_given_rng(self):
        a = ParaphraseGenerator(rng=np.random.default_rng(3))
        b = ParaphraseGenerator(rng=np.random.default_rng(3))
        question = "what is the total mileage of vehicles"
        assert [a.paraphrase(question, 0.8) for _ in range(5)] == [
            b.paraphrase(question, 0.8) for _ in range(5)
        ]
