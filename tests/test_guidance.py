"""Tests for the guidance layer."""

import pytest

from repro.errors import GuidanceError
from repro.guidance import (
    ClarificationMode,
    ClarificationPolicy,
    ConversationGraph,
    ConversationPlanner,
    ExpertiseLevel,
    SimulatedUser,
    SuggestionEngine,
    TurnKind,
    UserGoal,
    UserProfiler,
)
from repro.guidance.clarification import ClarificationQuestion


class TestConversationGraph:
    def build(self):
        graph = ConversationGraph()
        question = graph.add_turn("user", TurnKind.USER_QUESTION, "how many?")
        answer = graph.add_turn(
            "system",
            TurnKind.SYSTEM_ANSWER,
            "five",
            confidence=0.9,
            replies_to=question.turn_id,
            role="answers",
        )
        return graph, question, answer

    def test_turn_ids_increase(self):
        graph, question, answer = self.build()
        assert answer.turn_id > question.turn_id

    def test_history_text(self):
        graph, _question, _answer = self.build()
        lines = graph.history_text()
        assert lines == ["user: how many?", "system: five"]

    def test_replies_to(self):
        graph, question, answer = self.build()
        assert [t.turn_id for t in graph.replies_to(question.turn_id)] == [
            answer.turn_id
        ]

    def test_thread_of(self):
        graph, question, answer = self.build()
        thread = [t.turn_id for t in graph.thread_of(answer.turn_id)]
        assert thread == [question.turn_id, answer.turn_id]

    def test_open_clarification_detection(self):
        graph = ConversationGraph()
        question = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        graph.add_turn(
            "system",
            TurnKind.CLARIFICATION_REQUEST,
            "which?",
            replies_to=question.turn_id,
            role="clarifies",
        )
        assert graph.open_clarification() is not None
        graph.add_turn("user", TurnKind.CLARIFICATION_REPLY, "that one")
        assert graph.open_clarification() is None

    def test_speculative_turns_hidden_by_default(self):
        graph, question, _answer = self.build()
        graph.add_turn(
            "planner",
            TurnKind.SPECULATIVE,
            "what if",
            replies_to=question.turn_id,
            role="speculates",
            speculative=True,
        )
        assert len(graph.turns()) == 2
        assert len(graph.turns(include_speculative=True)) == 3
        assert len(graph.speculative_children(question.turn_id)) == 1

    def test_mean_confidence(self):
        graph, _question, _answer = self.build()
        assert graph.mean_confidence() == pytest.approx(0.9)

    def test_bad_edge_role_rejected(self):
        graph, question, answer = self.build()
        with pytest.raises(GuidanceError):
            graph.link(question.turn_id, answer.turn_id, role="teleports")

    def test_count_by_kind(self):
        graph, _q, _a = self.build()
        counts = graph.count_by_kind()
        assert counts[TurnKind.USER_QUESTION] == 1
        assert counts[TurnKind.SYSTEM_ANSWER] == 1


class TestClarificationPolicy:
    def test_modes(self):
        never = ClarificationPolicy(ClarificationMode.NEVER)
        always = ClarificationPolicy(ClarificationMode.ALWAYS)
        when = ClarificationPolicy(ClarificationMode.WHEN_AMBIGUOUS)
        assert not never.should_ask(ambiguous=True)
        assert always.should_ask(ambiguous=False)
        assert when.should_ask(ambiguous=True)
        assert not when.should_ask(ambiguous=False, confidence=0.9)

    def test_low_confidence_triggers(self):
        policy = ClarificationPolicy(confidence_trigger=0.5)
        assert policy.should_ask(ambiguous=False, confidence=0.3)

    def test_question_lists_options(self):
        policy = ClarificationPolicy()
        question = policy.build_question("q", ["barometer", "employment"])
        assert "barometer" in question.text
        assert "employment" in question.text

    def test_question_needs_candidates(self):
        with pytest.raises(GuidanceError):
            ClarificationPolicy().build_question("q", [])

    def test_reply_resolution_by_mention(self):
        policy = ClarificationPolicy()
        question = ClarificationQuestion(
            text="?", options=["barometer", "employment"]
        )
        assert policy.resolve_reply("the barometer please", question) == "barometer"

    def test_reply_resolution_affirmation(self):
        policy = ClarificationPolicy()
        question = ClarificationQuestion(text="?", options=["employment"])
        assert policy.resolve_reply("yes", question) == "employment"

    def test_unresolvable_reply(self):
        policy = ClarificationPolicy()
        question = ClarificationQuestion(text="?", options=["barometer"])
        assert policy.resolve_reply("pineapples", question) is None


class TestPlanner:
    def test_high_confidence_answers(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        planner = ConversationPlanner()
        decision = planner.plan(
            graph, turn.turn_id, confidence=0.95, ambiguous=False, can_suggest=False
        )
        assert decision.action == "answer"

    def test_ambiguity_clarifies(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        decision = ConversationPlanner().plan(
            graph, turn.turn_id, confidence=None, ambiguous=True, can_suggest=False
        )
        assert decision.action == "clarify"

    def test_low_confidence_prefers_clarification(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        decision = ConversationPlanner().plan(
            graph, turn.turn_id, confidence=0.3, ambiguous=False, can_suggest=False
        )
        assert decision.action == "clarify"

    def test_nothing_possible_abstains(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        decision = ConversationPlanner().plan(
            graph, turn.turn_id, confidence=None, ambiguous=False, can_suggest=False
        )
        assert decision.action == "abstain"

    def test_scenarios_recorded_in_graph(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        ConversationPlanner().plan(
            graph, turn.turn_id, confidence=0.7, ambiguous=True, can_suggest=True
        )
        speculative = graph.speculative_children(turn.turn_id)
        assert len(speculative) >= 2
        assert any(node.metadata.get("chosen") for node in speculative)

    def test_describe(self):
        graph = ConversationGraph()
        turn = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        decision = ConversationPlanner().plan(
            graph, turn.turn_id, confidence=0.9, ambiguous=False, can_suggest=False
        )
        assert "answer" in decision.describe()


class TestSuggestions:
    def test_time_series_table_gets_analysis_suggestion(self, swiss_domain):
        from repro.kg import SchemaKnowledgeGraph

        kg = SchemaKnowledgeGraph(swiss_domain.registry.database.catalog)
        engine = SuggestionEngine(kg)
        suggestions = engine.suggest("barometer")
        assert any(s.kind == "analysis" for s in suggestions)

    def test_related_dataset_via_fk(self, employees_kg):
        engine = SuggestionEngine(employees_kg)
        suggestions = engine.suggest("employees")
        datasets = [s for s in suggestions if s.kind == "dataset"]
        assert datasets
        assert datasets[0].payload["table"] == "departments"

    def test_drill_down_skips_used_columns(self, employees_kg):
        engine = SuggestionEngine(employees_kg)
        fresh = engine.suggest("employees", max_suggestions=10)
        used = engine.suggest("employees", {"department", "city"}, max_suggestions=10)
        fresh_drills = {s.payload.get("group_by") for s in fresh if s.kind == "drill_down"}
        used_drills = {s.payload.get("group_by") for s in used if s.kind == "drill_down"}
        assert "department" in fresh_drills
        assert "department" not in used_drills

    def test_max_suggestions_respected(self, employees_kg):
        engine = SuggestionEngine(employees_kg)
        assert len(engine.suggest("employees", max_suggestions=2)) <= 2


class TestProfiler:
    def test_novice_stays_novice(self):
        profiler = UserProfiler()
        for _ in range(4):
            profile = profiler.observe("show me stuff")
        assert profile.level in (ExpertiseLevel.NOVICE, ExpertiseLevel.INTERMEDIATE)

    def test_technical_questions_raise_expertise(self):
        profiler = UserProfiler(schema_terms={"salary", "department"})
        for _ in range(6):
            profile = profiler.observe(
                "decompose the salary distribution per department and report "
                "the variance, correlation and confidence interval of the regression"
            )
        assert profile.level is ExpertiseLevel.EXPERT
        assert profile.prefers_terse_answers

    def test_profile_moves_gradually(self):
        profiler = UserProfiler()
        first = profiler.observe("seasonality regression variance correlation query")
        assert first.level is not ExpertiseLevel.EXPERT  # one question isn't enough


class TestSimulatedUser:
    def make_goal(self):
        return UserGoal(
            clear_question="how many employees are there",
            vague_question="tell me about the people",
            gold_sql="SELECT COUNT(*) FROM employees",
            gold_rows=[(5,)],
            target_terms=["employees"],
        )

    def test_opening_question_vague_vs_clear(self):
        vague = SimulatedUser(self.make_goal(), ambiguous_opening=True)
        clear = SimulatedUser(self.make_goal(), ambiguous_opening=False)
        assert vague.opening_question() == "tell me about the people"
        assert clear.opening_question() == "how many employees are there"

    def test_clarification_answer_matches_goal(self):
        user = SimulatedUser(self.make_goal())
        question = ClarificationQuestion(
            text="?", options=["departments", "employees"]
        )
        assert user.answer_clarification(question) == "employees"

    def test_judge_answer(self):
        user = SimulatedUser(self.make_goal())
        assert user.judge_answer([(5,)])
        assert not user.judge_answer([(4,)])
        assert not user.judge_answer(None)

    def test_patience_exhausts(self):
        user = SimulatedUser(self.make_goal(), patience=2)
        user.opening_question()
        user.rephrase()
        assert user.exhausted


class TestGraphSerialisation:
    def test_round_trip(self):
        graph = ConversationGraph()
        question = graph.add_turn("user", TurnKind.USER_QUESTION, "how many?")
        graph.add_turn(
            "system", TurnKind.SYSTEM_ANSWER, "five",
            confidence=0.9, replies_to=question.turn_id, role="answers",
        )
        payload = graph.to_dict()
        rebuilt = ConversationGraph.from_dict(payload)
        assert rebuilt.history_text() == graph.history_text()
        assert rebuilt.to_dict() == payload

    def test_speculative_turns_survive(self):
        graph = ConversationGraph()
        question = graph.add_turn("user", TurnKind.USER_QUESTION, "q")
        graph.add_turn(
            "planner", TurnKind.SPECULATIVE, "what if",
            replies_to=question.turn_id, role="speculates", speculative=True,
        )
        rebuilt = ConversationGraph.from_dict(graph.to_dict())
        assert len(rebuilt.turns(include_speculative=True)) == 2
        assert len(rebuilt.turns()) == 1

    def test_bad_edge_rejected(self):
        with pytest.raises(GuidanceError):
            ConversationGraph.from_dict(
                {"turns": [], "edges": [{"from": 0, "to": 1, "role": "follows"}]}
            )

    def test_json_serialisable(self):
        import json

        graph = ConversationGraph()
        graph.add_turn("user", TurnKind.USER_QUESTION, "q", metadata={"k": 1})
        text = json.dumps(graph.to_dict())
        rebuilt = ConversationGraph.from_dict(json.loads(text))
        assert rebuilt.turn(0).metadata == {"k": 1}
