"""Edge-case tests across layers that the main suites do not reach."""

import numpy as np
import pytest

from repro.core import Answer, AnswerKind, CDAEngine, ReliabilityConfig
from repro.datasets import build_swiss_labour_registry
from repro.errors import ExecutionError
from repro.soundness.confidence import ConfidenceBreakdown
from repro.sqldb import Database


class TestAnswerRendering:
    def test_render_toggles(self):
        answer = Answer(
            kind=AnswerKind.DATA,
            text="the answer",
            confidence=ConfidenceBreakdown(value=0.8, parts={"x": 0.8}),
            sources=["https://example.org"],
        )
        full = answer.render()
        assert "Confidence: 80%" in full
        assert "example.org" in full
        bare = answer.render(show_confidence=False, show_sources=False)
        assert "Confidence" not in bare
        assert "example.org" not in bare

    def test_answered_property(self):
        assert Answer(kind=AnswerKind.DATA, text="x").answered
        assert Answer(kind=AnswerKind.METADATA, text="x").answered
        assert not Answer(kind=AnswerKind.ABSTENTION, text="x").answered
        assert not Answer(kind=AnswerKind.CLARIFICATION, text="x").answered


class TestEngineEdges:
    @pytest.fixture
    def engine(self):
        domain = build_swiss_labour_registry(seed=41)
        return CDAEngine(domain.registry, domain.vocabulary)

    def test_empty_result_still_annotated(self, engine):
        answer = engine.ask(
            "how many employment records have employees above 99999999"
        )
        assert answer.kind is AnswerKind.DATA
        assert answer.rows == [(0,)]
        assert answer.verification.passed

    def test_repeated_questions_consistent(self, engine):
        first = engine.ask("how many cantons are there")
        second = engine.ask("how many cantons are there")
        assert first.rows == second.rows
        assert second.verification.passed  # cache copy still verifies

    def test_conversation_graph_grows_monotonically(self, engine):
        sizes = []
        for question in ("hello", "how many cantons are there", "thanks"):
            engine.ask(question)
            sizes.append(len(engine.session.graph))
        assert sizes == sorted(sizes)
        assert sizes[-1] >= 6  # each turn adds user + system nodes

    def test_metadata_for_document_source(self, engine):
        answer = engine.ask("how is the barometer methodology documented")
        assert answer.kind in (AnswerKind.METADATA, AnswerKind.ABSTENTION)
        if answer.kind is AnswerKind.METADATA:
            assert answer.sources


class TestSQLEdges:
    def test_order_by_expression(self, employees_db):
        rows = employees_db.execute(
            "SELECT name FROM employees WHERE salary IS NOT NULL "
            "ORDER BY salary * -1 ASC LIMIT 1"
        ).rows
        assert rows == [("ann",)]

    def test_case_in_aggregate(self, employees_db):
        result = employees_db.execute(
            "SELECT SUM(CASE WHEN city = 'zurich' THEN 1 ELSE 0 END) "
            "FROM employees"
        )
        assert result.scalar() == 3

    def test_string_functions_compose(self, employees_db):
        result = employees_db.execute(
            "SELECT UPPER(SUBSTR(name, 1, 1)) || name FROM employees WHERE id = 1"
        )
        assert result.scalar() == "Aann"

    def test_group_by_expression(self, employees_db):
        result = employees_db.execute(
            "SELECT UPPER(city), COUNT(*) FROM employees "
            "GROUP BY UPPER(city) ORDER BY UPPER(city)"
        )
        assert result.rows[0] == ("BERN", 1)

    def test_offset_beyond_result(self, employees_db):
        rows = employees_db.execute(
            "SELECT id FROM employees ORDER BY id LIMIT 5 OFFSET 100"
        ).rows
        assert rows == []

    def test_limit_zero(self, employees_db):
        assert employees_db.execute("SELECT id FROM employees LIMIT 0").rows == []

    def test_division_error_inside_aggregate_argument(self, employees_db):
        with pytest.raises(ExecutionError):
            employees_db.execute("SELECT SUM(salary / 0) FROM employees")

    def test_self_join_with_aliases(self, employees_db):
        result = employees_db.execute(
            "SELECT a.name, b.name FROM employees a "
            "JOIN employees b ON a.department = b.department "
            "WHERE a.id < b.id ORDER BY a.id, b.id"
        )
        # eng pair (ann,bob) + sales pairs (cat,dan),(cat,eve),(dan,eve)
        assert len(result.rows) == 4

    def test_between_in_where(self, employees_db):
        rows = employees_db.execute(
            "SELECT id FROM employees WHERE salary BETWEEN 75 AND 95 ORDER BY id"
        ).rows
        assert rows == [(2,), (3,)]


class TestProgressiveBatching:
    def test_batch_size_larger_than_dataset(self):
        from repro.vector import ProgressiveIndex, VectorDataset

        rng = np.random.default_rng(0)
        dataset = VectorDataset(vectors=rng.normal(size=(10, 4)))
        index = ProgressiveIndex(delta=0.1, batch_size=1000)
        index.build(dataset)
        result = index.search(dataset.vectors[0], 3)
        assert len(result.ids) == 3
        assert result.distances[0] == pytest.approx(0.0)

    def test_k_equals_dataset_size(self):
        from repro.vector import ProgressiveIndex, VectorDataset

        rng = np.random.default_rng(0)
        dataset = VectorDataset(vectors=rng.normal(size=(8, 4)))
        index = ProgressiveIndex(delta=0.1)
        index.build(dataset)
        result = index.search(dataset.vectors[0], 8)
        assert sorted(result.ids) == list(range(8))


class TestLLMOnlyConfigPath:
    def test_llm_only_without_llm_is_graceful(self):
        domain = build_swiss_labour_registry(seed=41)
        engine = CDAEngine(
            domain.registry, domain.vocabulary,
            config=ReliabilityConfig.llm_only(), llm=None,
        )
        answer = engine.ask("how many cantons are there")
        # Without any translator it must not fabricate data: it either
        # abstains or degrades to a dataset overview (the named source).
        assert answer.kind in (AnswerKind.ABSTENTION, AnswerKind.METADATA)
        assert answer.rows is None

    def test_discovery_still_available_in_llm_only(self):
        domain = build_swiss_labour_registry(seed=41)
        engine = CDAEngine(
            domain.registry, domain.vocabulary,
            config=ReliabilityConfig.llm_only(),
        )
        answer = engine.ask("what datasets are available about the labour market")
        assert answer.kind is AnswerKind.DISCOVERY
