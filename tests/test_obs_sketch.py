"""Quantile sketch: accuracy bound, merge equivalence, histogram backend.

Covers the PR's acceptance criteria: sketch quantiles within 2% relative
error of exact quantiles on 1e5 observations, ``merge(a, b)`` ==
observe-all equivalence (property-based), linear interpolation inside
``Histogram.quantile`` with pinned monotonicity, and the lossless
``MetricsRegistry.to_dict()/from_dict()`` round-trip.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry, QuantileSketch


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank exact quantile over a sorted sample."""
    rank = min(int(q * (len(sorted_values) - 1)), len(sorted_values) - 1)
    return sorted_values[rank]


# -- accuracy -----------------------------------------------------------------


class TestSketchAccuracy:
    @pytest.mark.parametrize(
        "distribution",
        ["lognormal", "uniform", "exponential", "bimodal"],
    )
    def test_within_two_percent_on_1e5_observations(self, distribution):
        rng = random.Random(42)
        draw = {
            "lognormal": lambda: rng.lognormvariate(0.0, 2.0),
            "uniform": lambda: rng.uniform(0.001, 1000.0),
            "exponential": lambda: rng.expovariate(1 / 50.0),
            "bimodal": lambda: (
                rng.gauss(1.0, 0.1) if rng.random() < 0.5 else rng.gauss(500.0, 20.0)
            ),
        }[distribution]
        sketch = QuantileSketch(relative_accuracy=0.01)
        values = [abs(draw()) + 1e-9 for _ in range(100_000)]
        for value in values:
            sketch.observe(value)
        values.sort()
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999):
            exact = exact_quantile(values, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= 0.02 * exact, (q, exact, estimate)

    def test_extremes_are_exact(self):
        sketch = QuantileSketch()
        for value in (3.0, 1.0, 7.5, 2.2):
            sketch.observe(value)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 7.5
        assert sketch.min == 1.0 and sketch.max == 7.5

    def test_zeros_and_negatives(self):
        sketch = QuantileSketch()
        for value in (-10.0, -1.0, 0.0, 0.0, 1.0, 10.0):
            sketch.observe(value)
        assert sketch.quantile(0.0) == -10.0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 10.0
        # Negative estimates keep the relative-error bound too.
        low = sketch.quantile(0.2)
        assert abs(low - (-1.0)) <= 0.02 * 1.0

    def test_empty_and_validation(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)

    def test_quantiles_batch_keys(self):
        sketch = QuantileSketch()
        for value in range(1, 101):
            sketch.observe(float(value))
        batch = sketch.quantiles((0.5, 0.95, 0.99))
        assert set(batch) == {"p50", "p95", "p99"}
        assert batch["p50"] <= batch["p95"] <= batch["p99"]


# -- merge --------------------------------------------------------------------


class TestSketchMerge:
    @given(
        left=st.lists(
            st.floats(
                min_value=1e-6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=60,
        ),
        right=st.lists(
            st.floats(
                min_value=1e-6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_observe_all(self, left, right):
        merged = QuantileSketch()
        other = QuantileSketch()
        combined = QuantileSketch()
        for value in left:
            merged.observe(value)
            combined.observe(value)
        for value in right:
            other.observe(value)
            combined.observe(value)
        merged.merge(other)
        # Bucket state is identical, so every quantile answer matches
        # exactly (the float running sum may differ in rounding only).
        assert merged.count == combined.count
        assert merged.min == combined.min and merged.max == combined.max
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert merged.quantile(q) == combined.quantile(q)
        state_a = merged.to_dict()
        state_b = combined.to_dict()
        assert state_a["positive"] == state_b["positive"]
        assert state_a["zeros"] == state_b["zeros"]
        assert state_a["sum"] == pytest.approx(state_b["sum"], rel=1e-9, abs=1e-9)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))
        with pytest.raises(TypeError):
            QuantileSketch().merge(object())

    def test_round_trip_preserves_state(self):
        sketch = QuantileSketch(0.02)
        for value in (-3.0, 0.0, 1.5, 200.0):
            sketch.observe(value)
        payload = json.loads(json.dumps(sketch.to_dict()))
        restored = QuantileSketch.from_dict(payload)
        assert restored.to_dict() == sketch.to_dict()
        assert restored.quantile(0.5) == sketch.quantile(0.5)


# -- histogram integration ----------------------------------------------------


class TestHistogramSketchBackend:
    def test_sketch_backend_sharpens_quantiles(self):
        plain = Histogram("plain")
        sketched = Histogram("sketched", sketch=True)
        values = [2.0 + (index % 100) / 100.0 for index in range(1_000)]
        for value in values:  # all inside the (1, 10] decade bucket
            plain.observe(value)
            sketched.observe(value)
        exact = sorted(values)[int(0.95 * (len(values) - 1))]
        assert abs(sketched.quantile(0.95) - exact) <= 0.02 * exact
        assert sketched.snapshot()["quantiles"]["p95"] == sketched.quantile(0.95)

    def test_latency_names_get_the_sketch_automatically(self):
        registry = MetricsRegistry()
        assert registry.histogram("core.engine.turn.latency").sketch is not None
        assert registry.histogram("sqldb.executor.seconds").sketch is None
        assert registry.histogram("x", sketch=0.05).sketch.relative_accuracy == 0.05

    def test_reset_clears_sketch_in_place(self):
        histogram = Histogram("h.latency", sketch=True)
        histogram.observe(5.0)
        backend = histogram.sketch
        histogram.reset()
        assert histogram.sketch is backend
        assert backend.count == 0
        assert histogram.quantile(0.5) == 0.0


# -- satellite: interpolated bucket quantiles ---------------------------------


class TestHistogramInterpolation:
    def test_interpolates_within_the_winning_bucket(self):
        histogram = Histogram("h", buckets=(0.0, 10.0, 100.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            histogram.observe(value)
        # All mass in the (0, 10] bucket: quantiles interpolate between
        # the observed min and the bucket bound instead of pinning to 10.
        assert histogram.quantile(0.5) < 10.0
        assert histogram.quantile(0.25) < histogram.quantile(0.75)

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(5.0)
        histogram.observe(5.0)
        assert histogram.quantile(1.0) == 5.0  # not the bucket bound
        assert histogram.quantile(0.0) >= 5.0

    def test_overflow_bin_interpolates_toward_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (0.5, 2.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(1.0) == 50.0
        assert 1.0 <= histogram.quantile(0.7) <= 50.0

    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
        qs=st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=2,
            max_size=8,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantiles_are_monotone_in_q(self, values, qs):
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        qs.sort()
        estimates = [histogram.quantile(q) for q in qs]
        assert all(a <= b for a, b in zip(estimates, estimates[1:])), (
            qs, estimates,
        )


# -- satellite: registry round trip -------------------------------------------


_METRIC_NAMES = st.sampled_from(
    ["layer.a.count", "layer.b.level", "layer.c.seconds", "layer.d.latency"]
)


@st.composite
def _registry_operations(draw):
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["counter", "gauge", "histogram"]),
                _METRIC_NAMES,
                st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            max_size=40,
        )
    )
    return operations


class TestRegistryRoundTrip:
    @given(operations=_registry_operations())
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_is_lossless(self, operations):
        registry = MetricsRegistry()
        for kind, name, value in operations:
            name = f"{kind}.{name}"  # one kind per name: no conflicts
            if kind == "counter":
                registry.counter(name).inc(int(abs(value)))
            elif kind == "gauge":
                registry.gauge(name).set(value)
            else:
                registry.histogram(name).observe(value)
        payload = registry.to_dict()
        # JSON round-trip too: the export path serialises this payload.
        decoded = json.loads(json.dumps(payload))
        restored = MetricsRegistry.from_dict(decoded)
        assert restored.to_dict() == payload
        assert restored.names() == registry.names()
        for name in registry.names():
            original = registry.get(name)
            copy = restored.get(name)
            assert copy.kind == original.kind
            assert copy.snapshot() == original.snapshot()

    def test_sketch_state_survives_the_round_trip(self):
        registry = MetricsRegistry()
        latency = registry.histogram("turns.latency")
        for value in (0.01, 0.02, 0.5, 1.2):
            latency.observe(value)
        restored = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict()))
        )
        copy = restored.get("turns.latency")
        assert copy.sketch is not None
        assert copy.quantile(0.5) == latency.quantile(0.5)
        assert restored.to_dict() == registry.to_dict()
