"""Flight recorder: capture, black-box serialisation, config round-trip.

The capture side of the PR-5 loop: every ``CDAEngine.ask`` leaves a
:class:`~repro.obs.recorder.TurnRecording` in the bounded ring, the ring
serialises to a versioned JSONL black box, anomalous turns auto-dump,
and the two satellites it rests on — a lossless
``ReliabilityConfig.to_dict/from_dict`` and a deterministic
``Session.state_digest`` — hold under property-based scrutiny.
The replay/divergence side lives in ``tests/test_replay.py``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CDAEngine, ReliabilityConfig
from repro.core.session import Session
from repro.guidance.clarification import ClarificationMode
from repro.guidance.conversation_graph import TurnKind
from repro.nl.nl2sql import GroundingConfig
from repro.obs import (
    BLACKBOX_VERSION,
    BlackBox,
    FlightRecorder,
    SLOThresholds,
    get_event_log,
)
from repro.obs.events import EventLog


QUESTIONS = (
    "how many employees are there",
    "what is the average salary by canton",
    "what data do you have about employment",
    "employment",
)


@pytest.fixture
def engine(swiss_domain):
    return CDAEngine(swiss_domain.registry, swiss_domain.vocabulary)


# -- satellite: ReliabilityConfig round trip ----------------------------------


_config_kwargs = st.fixed_dictionaries(
    {},
    optional={
        "use_grounded_parser": st.booleans(),
        "use_llm_fallback": st.booleans(),
        "consistency_samples": st.integers(min_value=1, max_value=9),
        "use_constrained_decoding": st.booleans(),
        "query_cache_size": st.one_of(
            st.none(), st.integers(min_value=1, max_value=4096)
        ),
        "use_query_optimizer": st.booleans(),
        "attach_explanations": st.booleans(),
        "record_turns": st.booleans(),
        "recorder_capacity": st.integers(min_value=1, max_value=2048),
        "recorder_dump_dir": st.one_of(st.none(), st.just("/tmp/boxes")),
        "tracing": st.booleans(),
        "verification_depth": st.sampled_from(
            ["none", "static", "reexecution", "provenance"]
        ),
        "abstention_threshold": st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        "allow_abstention": st.booleans(),
        "clarification_mode": st.sampled_from(list(ClarificationMode)),
        "offer_suggestions": st.booleans(),
        "adapt_to_expertise": st.booleans(),
        "grounding": st.builds(
            GroundingConfig,
            use_vocabulary=st.booleans(),
            use_value_index=st.booleans(),
            min_match_score=st.floats(
                min_value=0.0, max_value=1.0, allow_nan=False
            ),
        ),
        "slo": st.builds(
            SLOThresholds,
            turn_p50_seconds=st.floats(
                min_value=1e-4, max_value=10.0, allow_nan=False
            ),
            abstention_rate_ceiling=st.floats(
                min_value=0.0, max_value=1.0, allow_nan=False
            ),
        ),
    },
)


class TestConfigRoundTrip:
    @given(kwargs=_config_kwargs)
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_is_lossless(self, kwargs):
        config = ReliabilityConfig(**kwargs)
        payload = config.to_dict()
        # The black box stores this payload as JSON: the JSON round-trip
        # must be part of the loop.
        decoded = json.loads(json.dumps(payload))
        restored = ReliabilityConfig.from_dict(decoded)
        assert restored == config
        assert restored.to_dict() == payload

    def test_presets_round_trip(self):
        for preset in (
            ReliabilityConfig.full(),
            ReliabilityConfig.llm_only(),
            ReliabilityConfig.grounded_no_verify(),
            ReliabilityConfig.no_guidance(),
        ):
            assert ReliabilityConfig.from_dict(preset.to_dict()) == preset

    def test_unknown_keys_raise(self):
        payload = ReliabilityConfig.full().to_dict()
        payload["use_time_travel"] = True
        with pytest.raises(ValueError, match="use_time_travel"):
            ReliabilityConfig.from_dict(payload)

    def test_payload_is_json_safe(self):
        payload = ReliabilityConfig.full().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["clarification_mode"] == "when_ambiguous"
        assert isinstance(payload["grounding"], dict)
        assert isinstance(payload["slo"], dict)


# -- satellite: deterministic session state digest ----------------------------


class TestStateDigest:
    def _scripted_session(self, order=("canton", "sector")) -> Session:
        session = Session()
        turn = session.record_user_turn("how many employees", TurnKind.USER_QUESTION)
        session.record_system_turn(
            "There are 8000.", TurnKind.SYSTEM_ANSWER, turn, confidence=0.91
        )
        session.focus_table = "employees"
        for column in order:
            session.used_group_columns.add(column)
        return session

    def test_identical_histories_share_a_digest(self):
        assert (
            self._scripted_session().state_digest()
            == self._scripted_session().state_digest()
        )

    def test_set_insertion_order_does_not_matter(self):
        forward = self._scripted_session(order=("canton", "sector"))
        backward = self._scripted_session(order=("sector", "canton"))
        assert forward.state_digest() == backward.state_digest()

    def test_any_state_change_moves_the_digest(self):
        base = self._scripted_session()
        changed = self._scripted_session()
        changed.focus_table = "departments"
        assert base.state_digest() != changed.state_digest()
        extra_turn = self._scripted_session()
        extra_turn.record_user_turn("and for bern?", TurnKind.USER_QUESTION)
        assert base.state_digest() != extra_turn.state_digest()

    def test_state_dict_is_canonical_json(self):
        state = self._scripted_session().state_dict()
        assert json.loads(json.dumps(state)) == state


# -- satellite ride-along: EventLog mark/since --------------------------------


class TestEventSlicing:
    def test_since_returns_exactly_the_new_events(self):
        log = EventLog(capacity=16)
        log.emit("before.one")
        marker = log.mark()
        log.emit("after.one")
        log.emit("after.two", severity="warning")
        names = [event.name for event in log.since(marker)]
        assert names == ["after.one", "after.two"]
        assert log.since(log.mark()) == []

    def test_since_survives_ring_overflow(self):
        log = EventLog(capacity=3)
        marker = log.mark()
        for index in range(7):
            log.emit(f"event.{index}")
        names = [event.name for event in log.since(marker)]
        # Seven were emitted after the marker but only three survive.
        assert names == ["event.4", "event.5", "event.6"]


# -- capture ------------------------------------------------------------------


class TestEngineCapture:
    def test_every_turn_lands_in_the_recorder(self, engine):
        for question in QUESTIONS:
            engine.ask(question)
        assert len(engine.recorder) == len(QUESTIONS)
        recordings = engine.recorder.recordings()
        assert [r.question for r in recordings] == list(QUESTIONS)
        assert [r.turn_index for r in recordings] == list(range(len(QUESTIONS)))

    def test_output_envelope_contents(self, engine):
        engine.ask(QUESTIONS[0])
        outputs = engine.recorder.last().outputs
        assert outputs["kind"] == "data"
        assert outputs["abstained"] is False
        assert outputs["sql"].lower().startswith("select")
        assert outputs["rows"] and outputs["row_count"] == len(outputs["rows"])
        assert outputs["rows_truncated"] is False
        assert 0.0 < outputs["confidence"]["value"] <= 1.0
        assert outputs["post_digest"] == engine.session.state_digest()
        assert outputs["metrics_delta"]["core.session.questions"] == 1
        assert outputs["latency_s"] > 0
        assert "engine.execution" in outputs["stage_latency_ms"]
        # The span tree is held live and only serialised on to_dict().
        serialised = engine.recorder.last().to_dict()["outputs"]
        assert serialised["trace"]["name"] == "engine.ask"
        assert any(
            event["name"] == "engine.turn" for event in outputs["events"]
        )

    def test_pre_digest_chains_to_previous_post_digest(self, engine):
        fresh_digest = engine.session.state_digest()
        for question in QUESTIONS[:2]:
            engine.ask(question)
        first, second = engine.recorder.recordings()
        assert first.inputs["pre_digest"] == fresh_digest
        assert second.inputs["pre_digest"] == first.outputs["post_digest"]

    def test_ring_is_bounded(self, swiss_domain):
        engine = CDAEngine(
            swiss_domain.registry,
            swiss_domain.vocabulary,
            config=ReliabilityConfig(recorder_capacity=2),
        )
        for question in QUESTIONS[:3]:
            engine.ask(question)
        assert len(engine.recorder) == 2
        assert engine.recorder.dropped == 1
        assert engine.recorder.recordings()[0].question == QUESTIONS[1]

    def test_record_turns_off_disables_capture(self, swiss_domain):
        engine = CDAEngine(
            swiss_domain.registry,
            swiss_domain.vocabulary,
            config=ReliabilityConfig(record_turns=False),
        )
        assert engine.recorder is None
        answer = engine.ask(QUESTIONS[0])
        assert answer.kind.value == "data"

    def test_untraced_turns_still_capture(self, swiss_domain):
        engine = CDAEngine(
            swiss_domain.registry,
            swiss_domain.vocabulary,
            config=ReliabilityConfig(tracing=False),
        )
        engine.ask(QUESTIONS[0])
        outputs = engine.recorder.last().outputs
        assert outputs["kind"] == "data"
        assert outputs["trace"] is None
        assert outputs["stage_latency_ms"] == {}


# -- black-box files ----------------------------------------------------------


class TestBlackBox:
    def test_jsonl_round_trip(self, engine, tmp_path):
        for question in QUESTIONS:
            engine.ask(question)
        engine.recorder.context.update(domain="swiss", seed=0)
        path = tmp_path / "box.jsonl"
        engine.recorder.dump(path)
        blackbox = BlackBox.load(path)
        assert blackbox.header["version"] == BLACKBOX_VERSION
        assert blackbox.header["domain"] == "swiss"
        assert blackbox.header["config"] == engine.config.to_dict()
        assert len(blackbox) == len(QUESTIONS)
        for loaded, live in zip(blackbox.turns, engine.recorder.recordings()):
            assert loaded.to_dict() == json.loads(json.dumps(live.to_dict()))

    def test_header_resolves_fingerprint_lazily(self):
        recorder = FlightRecorder(context={"fingerprint": lambda: "abc123"})
        assert callable(recorder.context["fingerprint"])
        header = recorder.header()
        assert header["fingerprint"] == "abc123"
        assert recorder.context["fingerprint"] == "abc123"  # cached

    def test_engine_header_carries_the_registry_fingerprint(self, engine):
        header = engine.recorder.header()
        assert header["fingerprint"] == engine.registry.fingerprint()

    def test_malformed_blackboxes_raise(self, tmp_path):
        no_header = tmp_path / "no_header.jsonl"
        no_header.write_text(
            '{"record": "turn", "turn_index": 0, "inputs": {}, "outputs": {}}\n'
        )
        with pytest.raises(ValueError, match="no header"):
            BlackBox.load(no_header)
        wrong_version = tmp_path / "wrong_version.jsonl"
        wrong_version.write_text('{"record": "header", "version": 999}\n')
        with pytest.raises(ValueError, match="version"):
            BlackBox.load(wrong_version)


# -- registry fingerprint -----------------------------------------------------


class TestRegistryFingerprint:
    def test_stable_within_and_across_builds(self, swiss_domain):
        from repro.datasets import build_swiss_labour_registry

        assert (
            swiss_domain.registry.fingerprint()
            == swiss_domain.registry.fingerprint()
        )
        rebuilt = build_swiss_labour_registry(seed=7)
        assert (
            rebuilt.registry.fingerprint() == swiss_domain.registry.fingerprint()
        )

    def test_data_changes_move_the_fingerprint(self):
        from repro.datasets import build_swiss_labour_registry

        changed_seed = build_swiss_labour_registry(seed=8)
        baseline = build_swiss_labour_registry(seed=7)
        assert (
            changed_seed.registry.fingerprint()
            != baseline.registry.fingerprint()
        )


# -- dump-on-anomaly ----------------------------------------------------------


class TestAnomalies:
    def test_error_turn_is_flagged_and_dumped(self, swiss_domain, tmp_path):
        from repro.nl import SimulatedLLM

        dump_dir = tmp_path / "boxes"
        engine = CDAEngine(
            swiss_domain.registry,
            swiss_domain.vocabulary,
            config=ReliabilityConfig(
                use_grounded_parser=False,
                use_constrained_decoding=False,
                consistency_samples=1,
                recorder_dump_dir=str(dump_dir),
            ),
            llm=SimulatedLLM(
                swiss_domain.registry.database.catalog,
                error_rate=0.0,
                sample_fidelity=1.0,
            ),
        )
        answer = engine.ask(
            "how many employees are there",
            llm_gold_sql="SELECT * FROM phantom_table",
        )
        assert answer.kind.value == "error"
        recording = engine.recorder.last()
        assert "error" in recording.anomaly
        anomaly_events = get_event_log().events(prefix="recorder.anomaly")
        assert anomaly_events and anomaly_events[-1].attrs["turn"] == 0
        dumped = list(dump_dir.glob("blackbox-turn*.jsonl"))
        assert len(dumped) == 1
        assert BlackBox.load(dumped[0]).turns[-1].anomaly == recording.anomaly

    def test_latency_slo_breach_is_flagged(self, swiss_domain):
        config = ReliabilityConfig(slo=SLOThresholds(turn_p95_seconds=0.0))
        engine = CDAEngine(swiss_domain.registry, swiss_domain.vocabulary, config)
        engine.ask(QUESTIONS[0])
        assert "latency_slo_breach" in engine.recorder.last().anomaly

    def test_clean_turns_are_not_flagged(self, engine):
        engine.ask(QUESTIONS[0])
        assert engine.recorder.last().anomaly is None
        assert get_event_log().events(prefix="recorder.anomaly") == []


# -- CLI ----------------------------------------------------------------------


class TestRecordCLI:
    def test_record_flag_writes_a_blackbox(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "session.jsonl"
        exit_code = main([
            "--domain", "swiss",
            "--ask", "how many employees are there",
            "--record", str(path),
        ])
        assert exit_code == 0
        assert "black box written" in capsys.readouterr().out
        blackbox = BlackBox.load(path)
        assert blackbox.header["domain"] == "swiss"
        assert len(blackbox) == 1
        assert blackbox.turns[0].outputs["kind"] == "data"
