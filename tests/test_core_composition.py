"""Tests for property composition — the paper's composability warning."""

import pytest

from repro.core import (
    Component,
    ComponentRegistry,
    Property,
    check_pipeline,
    compose_properties,
)
from repro.core.registry import default_cda_registry
from repro.errors import CompositionError


@pytest.fixture
def registry():
    return default_cda_registry()


class TestRegistry:
    def test_default_components_present(self, registry):
        for name in ("grounded_parser", "sql_engine", "verifier", "llm_generator"):
            assert name in registry

    def test_duplicate_rejected(self, registry):
        with pytest.raises(CompositionError):
            registry.register(Component.make("sql_engine"))

    def test_unknown_component(self, registry):
        with pytest.raises(CompositionError):
            registry.get("warp_drive")

    def test_resolve_pipeline(self, registry):
        pipeline = registry.resolve(["grounded_parser", "sql_engine"])
        assert [component.name for component in pipeline] == [
            "grounded_parser",
            "sql_engine",
        ]


class TestComposition:
    def test_full_cda_pipeline_has_core_properties(self, registry):
        pipeline = registry.resolve(
            ["grounded_parser", "sql_engine", "verifier", "answer_generator"]
        )
        verdict = compose_properties(pipeline)
        assert verdict.holds(Property.GROUNDING)
        assert verdict.holds(Property.EXPLAINABILITY)
        assert verdict.holds(Property.SOUNDNESS)

    def test_two_explainable_components_do_not_suffice(self, registry):
        """The paper's exact warning: an explainability-providing engine
        followed by a free-text summariser loses explainability, even
        though a provenance-tracking engine produced it."""
        pipeline = registry.resolve(
            ["grounded_parser", "sql_engine", "free_summariser"]
        )
        verdict = compose_properties(pipeline)
        assert not verdict.holds(Property.EXPLAINABILITY)
        assert verdict.lost_at[Property.EXPLAINABILITY] == "free_summariser"

    def test_llm_generator_drops_grounding(self, registry):
        pipeline = registry.resolve(
            ["grounded_parser", "llm_generator", "sql_engine"]
        )
        verdict = compose_properties(pipeline)
        assert not verdict.holds(Property.GROUNDING)
        assert verdict.lost_at[Property.GROUNDING] == "llm_generator"

    def test_constrained_decoder_restores_nothing_but_preserves(self, registry):
        with_decoder = compose_properties(
            registry.resolve(
                ["grounded_parser", "constrained_decoder", "sql_engine"]
            )
        )
        assert with_decoder.holds(Property.GROUNDING)

    def test_requires_violation_is_an_error(self, registry):
        # The verifier requires explainability (lineage); putting it after
        # a summariser that drops lineage is an *invalid* composition.
        pipeline = registry.resolve(
            ["grounded_parser", "sql_engine", "free_summariser", "verifier"]
        )
        with pytest.raises(CompositionError) as excinfo:
            compose_properties(pipeline)
        assert "verifier" in str(excinfo.value)

    def test_established_at_tracks_origin(self, registry):
        pipeline = registry.resolve(["grounded_parser", "sql_engine"])
        verdict = compose_properties(pipeline)
        assert verdict.established_at[Property.GROUNDING] == "grounded_parser"
        assert verdict.established_at[Property.EXPLAINABILITY] == "sql_engine"

    def test_explain_positive_and_negative(self, registry):
        pipeline = registry.resolve(
            ["grounded_parser", "sql_engine", "free_summariser"]
        )
        verdict = compose_properties(pipeline)
        assert "holds" in verdict.explain(Property.GROUNDING)
        assert "lost at" in verdict.explain(Property.EXPLAINABILITY)
        assert "never established" in verdict.explain(Property.GUIDANCE)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(CompositionError):
            compose_properties([])

    def test_input_properties_can_be_propagated(self, registry):
        pipeline = registry.resolve(["answer_generator"])
        verdict = compose_properties(
            pipeline, input_properties=frozenset({Property.SOUNDNESS})
        )
        assert verdict.holds(Property.SOUNDNESS)

    def test_check_pipeline_raises_with_reasons(self, registry):
        pipeline = registry.resolve(["llm_generator", "sql_engine"])
        with pytest.raises(CompositionError) as excinfo:
            check_pipeline(pipeline, required=[Property.GROUNDING])
        assert "P2_grounding" in excinfo.value.missing_properties

    def test_check_pipeline_passes(self, registry):
        pipeline = registry.resolve(
            ["grounded_parser", "sql_engine", "verifier", "answer_generator"]
        )
        verdict = check_pipeline(
            pipeline,
            required=[Property.GROUNDING, Property.SOUNDNESS],
        )
        assert verdict.holds(Property.SOUNDNESS)


class TestEmpiricalAgreement:
    """The formal verdicts must agree with what the code actually does."""

    def test_engine_answers_carry_lineage_iff_explainable_pipeline(self, employees_db):
        # sql_engine provides explainability: lineage really is attached.
        result = employees_db.execute("SELECT name FROM employees WHERE id = 1")
        assert result.lineage and result.lineage[0]

    def test_summarised_answers_really_lose_lineage(self, employees_db):
        # A "free summariser" stage is any transformation that keeps only
        # text.  After it, invertibility is empirically impossible.
        result = employees_db.execute("SELECT COUNT(*) FROM employees")
        summary_text = f"the count is {result.scalar()}"
        # No machine-readable provenance survives in the summary:
        assert "employees" not in summary_text or "[" not in summary_text
