"""Tests for the retrieval stack: documents, BM25, hybrid, dataset search."""

import pytest

from repro.errors import CDAError
from repro.retrieval import (
    BM25Index,
    DatasetSearchEngine,
    Document,
    DocumentStore,
    HybridRetriever,
)
from repro.retrieval.hybrid import reciprocal_rank_fusion


@pytest.fixture
def store():
    documents = DocumentStore()
    documents.add_text(
        "swiss_labour",
        "Swiss labour market overview",
        "Employment and unemployment statistics for Swiss cantons, "
        "including workforce participation rates.",
        source="https://example.ch/labour",
    )
    documents.add_text(
        "chocolate",
        "Chocolate production report",
        "Cocoa imports and chocolate manufacturing output by region.",
    )
    documents.add_text(
        "barometer",
        "Labour market barometer methodology",
        "The barometer is a monthly leading indicator from expert surveys "
        "about the labour market.",
    )
    return documents


class TestDocumentStore:
    def test_add_and_get(self, store):
        assert store.get("chocolate").title.startswith("Chocolate")

    def test_duplicate_rejected(self, store):
        with pytest.raises(CDAError):
            store.add_text("chocolate", "again", "text")

    def test_missing_raises(self, store):
        with pytest.raises(CDAError):
            store.get("nope")

    def test_snippet_truncates(self, store):
        snippet = store.get("swiss_labour").snippet(30)
        assert len(snippet) <= 30
        assert snippet.endswith("...")

    def test_order_preserved(self, store):
        assert store.ids() == ["swiss_labour", "chocolate", "barometer"]


class TestBM25:
    def test_relevant_document_ranks_first(self, store):
        index = BM25Index()
        index.build(store)
        hits = index.search("labour market statistics")
        assert hits[0].doc_id in ("swiss_labour", "barometer")
        assert hits[-1].doc_id != hits[0].doc_id

    def test_irrelevant_query_no_hits(self, store):
        index = BM25Index()
        index.build(store)
        assert index.search("quantum entanglement") == []

    def test_term_frequency_matters(self, store):
        index = BM25Index()
        index.build(store)
        hits = index.search("barometer")
        assert hits[0].doc_id == "barometer"

    def test_incremental_add(self, store):
        index = BM25Index()
        index.build(store)
        index.add_document(
            Document(doc_id="new", title="zebra migration", text="zebra zebra zebra")
        )
        hits = index.search("zebra")
        assert hits[0].doc_id == "new"

    def test_empty_index(self):
        index = BM25Index()
        index.build(DocumentStore())
        assert index.search("anything") == []

    def test_parameter_validation(self):
        with pytest.raises(CDAError):
            BM25Index(k1=0)
        with pytest.raises(CDAError):
            BM25Index(b=2.0)


class TestRRF:
    def test_agreement_wins(self):
        fused = reciprocal_rank_fusion([["a", "b", "c"], ["a", "c", "b"]])
        assert fused[0][0] == "a"

    def test_single_list_preserved(self):
        fused = reciprocal_rank_fusion([["x", "y"]])
        assert [doc for doc, _s in fused] == ["x", "y"]

    def test_item_in_one_list_still_ranked(self):
        fused = reciprocal_rank_fusion([["a"], ["b"]])
        assert {doc for doc, _s in fused} == {"a", "b"}


class TestHybridRetriever:
    def test_hybrid_combines_signals(self, store):
        retriever = HybridRetriever(store)
        retriever.build()
        hits = retriever.search("labour market barometer indicator")
        assert hits[0].doc_id == "barometer"
        assert hits[0].lexical_rank is not None

    def test_dense_only_mode(self, store):
        retriever = HybridRetriever(store)
        retriever.build()
        hits = retriever.search_dense("labour market workforce", k=2)
        assert len(hits) == 2

    def test_lazy_build(self, store):
        retriever = HybridRetriever(store)
        assert retriever.search("labour", k=1)  # builds on demand


class TestDatasetSearch:
    def test_discovery_finds_relevant_sources(self, swiss_domain):
        engine = DatasetSearchEngine(swiss_domain.registry, swiss_domain.vocabulary)
        hits = engine.search("overview of the working force in switzerland", k=3)
        names = [hit.info.name for hit in hits]
        assert "employment" in names or "barometer" in names

    def test_synonym_expansion_helps(self, swiss_domain):
        with_vocab = DatasetSearchEngine(
            swiss_domain.registry, swiss_domain.vocabulary
        )
        hits = with_vocab.search("jobs situation", k=3)
        assert any(hit.info.name == "employment" for hit in hits)

    def test_stale_sources_hidden(self, swiss_domain):
        engine = DatasetSearchEngine(swiss_domain.registry, swiss_domain.vocabulary)
        swiss_domain.registry.mark_stale("barometer")
        try:
            hits = engine.search("labour market barometer", k=5)
            assert all(hit.info.name != "barometer" for hit in hits)
        finally:
            swiss_domain.registry.refresh("barometer")

    def test_mode_validation(self, swiss_domain):
        with pytest.raises(ValueError):
            DatasetSearchEngine(swiss_domain.registry, mode="psychic")

    def test_prose_suggestions_shape(self, swiss_domain):
        engine = DatasetSearchEngine(swiss_domain.registry, swiss_domain.vocabulary)
        rows = engine.suggestions_for_prose("employment data", k=2)
        assert len(rows) <= 2
        for name, description, score in rows:
            assert isinstance(name, str)
            assert isinstance(score, float)


class TestRegistry:
    def test_sources_listing(self, swiss_domain):
        names = {info.name for info in swiss_domain.registry.sources()}
        assert {"barometer", "employment", "cantons"} <= names

    def test_info_lookup(self, swiss_domain):
        info = swiss_domain.registry.info("barometer")
        assert info.kind == "table"
        assert info.update_cadence == "monthly"

    def test_metadata_documents_describe_columns(self, swiss_domain):
        doc = swiss_domain.registry.metadata_documents.get("employment")
        assert "canton" in doc.text

    def test_duplicate_registration_rejected(self, swiss_domain):
        from repro.sqldb.table import Table
        from repro.sqldb.types import Column, ColumnType, Schema

        table = Table(
            name="barometer",
            schema=Schema(columns=[Column("x", ColumnType.INTEGER)]),
        )
        with pytest.raises(CDAError):
            swiss_domain.registry.register_table(table, description="dup")
