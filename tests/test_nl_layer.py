"""Tests for the NL model layer: intent, grammar, sqlgen, parser."""

import pytest

from repro.errors import AmbiguousQuestionError, TranslationError
from repro.kg import DomainVocabulary, VocabularyTerm
from repro.nl import (
    AggregateSpec,
    FilterSpec,
    GroundedSemanticParser,
    GroundingConfig,
    IntentKind,
    OrderSpec,
    QueryIntent,
    classify_intent,
    compile_intent,
)
from repro.nl.sqlgen import intent_to_sql


class TestIntentClassification:
    @pytest.mark.parametrize(
        "utterance,expected",
        [
            ("how many employees are there", IntentKind.DATA_QUERY),
            ("what is the average salary per city", IntentKind.DATA_QUERY),
            ("give me an overview of available datasets", IntentKind.DATASET_DISCOVERY),
            ("describe the schema of this table", IntentKind.METADATA),
            ("show me the seasonality and trend", IntentKind.ANALYSIS),
            ("are there outliers in the costs", IntentKind.ANALYSIS),
            ("hello there", IntentKind.CHITCHAT),
        ],
    )
    def test_routing(self, utterance, expected):
        assert classify_intent(utterance).kind is expected

    def test_clarification_context_overrides(self):
        score = classify_intent("the barometer", expecting_clarification=True)
        assert score.kind is IntentKind.CLARIFICATION_REPLY

    def test_long_reply_not_clarification(self):
        long_question = "how many employees are in the engineering department of zurich"
        score = classify_intent(long_question, expecting_clarification=True)
        assert score.kind is IntentKind.DATA_QUERY

    def test_margin_exposed(self):
        assert classify_intent("seasonality trend outliers").margin > 0


class TestGrammar:
    def test_intent_requires_content(self):
        with pytest.raises(TranslationError):
            QueryIntent(table="t")

    def test_intent_requires_table(self):
        with pytest.raises(TranslationError):
            QueryIntent(table="", select_columns=["a"])

    def test_aggregate_validation(self):
        with pytest.raises(TranslationError):
            AggregateSpec(function="MEDIAN", column="x")
        with pytest.raises(TranslationError):
            AggregateSpec(function="SUM", column=None)

    def test_filter_validation(self):
        with pytest.raises(TranslationError):
            FilterSpec(column="x", operator="~", value=1)

    def test_signature_order_insensitive(self):
        a = QueryIntent(
            table="t",
            select_columns=["a", "b"],
            filters=[
                FilterSpec("x", ">", 1),
                FilterSpec("y", "=", "v"),
            ],
        )
        b = QueryIntent(
            table="T",
            select_columns=["b", "a"],
            filters=[
                FilterSpec("y", "=", "v"),
                FilterSpec("x", ">", 1),
            ],
        )
        assert a.signature() == b.signature()

    def test_signature_distinguishes_semantics(self):
        a = QueryIntent(table="t", aggregates=[AggregateSpec("SUM", "x")])
        b = QueryIntent(table="t", aggregates=[AggregateSpec("AVG", "x")])
        assert a.signature() != b.signature()

    def test_describe_mentions_pieces(self):
        intent = QueryIntent(
            table="employees",
            aggregates=[AggregateSpec("AVG", "salary")],
            group_by=["department"],
            filters=[FilterSpec("city", "=", "zurich")],
        )
        text = intent.describe()
        assert "average salary" in text
        assert "for each department" in text
        assert "zurich" in text


class TestSqlGen:
    def test_simple_aggregate(self):
        intent = QueryIntent(
            table="t", aggregates=[AggregateSpec(function="COUNT", column=None)]
        )
        assert intent_to_sql(intent) == "SELECT COUNT(*) AS count_all FROM t"

    def test_filters_anded(self):
        intent = QueryIntent(
            table="t",
            select_columns=["a"],
            filters=[FilterSpec("a", ">", 1), FilterSpec("b", "=", "x")],
        )
        sql = intent_to_sql(intent)
        assert "((a > 1) AND (b = 'x'))" in sql

    def test_group_order_limit(self):
        aggregate = AggregateSpec("SUM", "v")
        intent = QueryIntent(
            table="t",
            aggregates=[aggregate],
            group_by=["g"],
            order_by=OrderSpec(column=aggregate.output_name, descending=True),
            limit=1,
        )
        sql = intent_to_sql(intent)
        assert "GROUP BY g" in sql
        assert "ORDER BY sum_v DESC" in sql
        assert "LIMIT 1" in sql

    def test_join_qualifies_columns(self):
        intent = QueryIntent(
            table="emp",
            aggregates=[AggregateSpec("COUNT", None)],
            filters=[FilterSpec("budget", ">", 10, table="dept")],
            join=("dept", "department", "department"),
        )
        sql = intent_to_sql(intent)
        assert "INNER JOIN dept" in sql
        assert "emp.department = dept.department" in sql
        assert "dept.budget > 10" in sql

    def test_like_filter(self):
        intent = QueryIntent(
            table="t",
            select_columns=["a"],
            filters=[FilterSpec("a", "LIKE", "x%")],
        )
        assert "LIKE 'x%'" in intent_to_sql(intent)

    def test_generated_sql_parses(self, employees_db):
        intent = QueryIntent(
            table="employees",
            aggregates=[AggregateSpec("AVG", "salary")],
            group_by=["department"],
        )
        result = employees_db.execute(intent_to_sql(intent))
        assert len(result.rows) == 2


@pytest.fixture
def parser(employees_kg):
    vocabulary = DomainVocabulary()
    vocabulary.add_term(
        VocabularyTerm(
            name="staff",
            synonyms=["workforce", "personnel"],
            schema_bindings=["table:employees"],
        )
    )
    return GroundedSemanticParser(employees_kg, vocabulary)


class TestGroundedParser:
    def run(self, parser, employees_db, question):
        outcome = parser.parse(question)
        return outcome, employees_db.execute(outcome.sql)

    def test_count_all(self, parser, employees_db):
        _outcome, result = self.run(parser, employees_db, "how many employees are there")
        assert result.scalar() == 5

    def test_aggregate_with_measure(self, parser, employees_db):
        _outcome, result = self.run(
            parser, employees_db, "what is the average salary of employees"
        )
        assert result.scalar() == pytest.approx(85.0)

    def test_value_grounding(self, parser, employees_db):
        outcome, result = self.run(parser, employees_db, "how many employees in zurich")
        assert result.scalar() == 3
        assert any("value index" in note for note in outcome.grounding_notes)

    def test_group_by(self, parser, employees_db):
        _outcome, result = self.run(
            parser, employees_db, "what is the average salary for each department"
        )
        assert dict(result.rows)["engineering"] == pytest.approx(95.0)

    def test_superlative(self, parser, employees_db):
        _outcome, result = self.run(
            parser, employees_db, "which department has the highest total salary"
        )
        assert result.rows[0][0] == "engineering"

    def test_numeric_filter(self, parser, employees_db):
        _outcome, result = self.run(
            parser,
            employees_db,
            "list the name and salary of employees with salary above 75",
        )
        assert len(result.rows) == 3

    def test_cross_table_filter_adds_join(self, parser, employees_db):
        outcome, result = self.run(
            parser, employees_db, "how many employees have budget above 400"
        )
        assert "INNER JOIN" in outcome.sql
        assert result.scalar() == 2

    def test_synonym_table_resolution(self, parser, employees_db):
        _outcome, result = self.run(
            parser, employees_db, "what is the total salary of the personnel"
        )
        assert result.scalar() == pytest.approx(340.0)

    def test_top_n(self, parser, employees_db):
        _outcome, result = self.run(parser, employees_db, "top 2 employees by salary")
        assert len(result.rows) == 2

    def test_typo_recovery(self, parser, employees_db):
        _outcome, result = self.run(
            parser, employees_db, "what is the average salray of employees"
        )
        assert result.scalar() == pytest.approx(85.0)

    def test_column_ambiguity_raised_with_candidates(self):
        # Two near-identical measures: the parser must ask, not guess.
        from repro.kg import SchemaKnowledgeGraph
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE items (id INT, cost_usd FLOAT, cost_eur FLOAT)")
        db.execute("INSERT INTO items VALUES (1, 10.0, 9.0)")
        parser = GroundedSemanticParser(SchemaKnowledgeGraph(db.catalog))
        with pytest.raises(AmbiguousQuestionError) as excinfo:
            parser.parse("what is the average cost of items")
        assert len(excinfo.value.candidates) == 2

    def test_preferred_table_resolves_ambiguity(self, employees_kg, employees_db):
        parser = GroundedSemanticParser(employees_kg)
        outcome = parser.parse("list the department data", preferred_table="employees")
        assert outcome.intent.table == "employees"

    def test_untranslatable_raises(self, parser):
        with pytest.raises(TranslationError):
            parser.parse("what is the meaning of life")

    def test_empty_question(self, parser):
        with pytest.raises(TranslationError):
            parser.parse("   ")

    def test_grounding_notes_explain_decisions(self, parser, employees_db):
        outcome, _result = self.run(
            parser, employees_db, "how many employees in zurich"
        )
        assert any("table" in note for note in outcome.grounding_notes)

    def test_confidence_reflects_weakest_link(self, parser, employees_db):
        exact, _ = self.run(parser, employees_db, "how many employees are there")
        fuzzy, _ = self.run(parser, employees_db, "how many employes are there")
        assert exact.confidence >= fuzzy.confidence


class TestGroundingAblation:
    def test_value_index_off_loses_literal_filters(self, employees_kg):
        config = GroundingConfig(use_value_index=False)
        parser = GroundedSemanticParser(employees_kg, config=config)
        outcome = parser.parse("how many employees in zurich")
        assert "zurich" not in outcome.sql

    def test_schema_graph_off_loses_fuzzy_columns(self, employees_kg):
        config = GroundingConfig(use_schema_graph=False)
        parser = GroundedSemanticParser(employees_kg, config=config)
        with pytest.raises(TranslationError):
            parser.parse("what is the average salray of employees")

    def test_join_resolution_off_drops_cross_table_filter(self, employees_kg):
        config = GroundingConfig(use_join_resolution=False)
        parser = GroundedSemanticParser(employees_kg, config=config)
        outcome = parser.parse("how many employees have budget above 400")
        assert "JOIN" not in outcome.sql

    def test_vocabulary_off_loses_synonyms(self, employees_kg):
        # Without the vocabulary, a question that names the table only by
        # synonym ("personnel") cannot be grounded.
        parser = GroundedSemanticParser(employees_kg, vocabulary=None)
        with pytest.raises(TranslationError):
            parser.parse("how many personnel are there")

    def test_vocabulary_on_recovers_synonyms(self, parser, employees_db):
        outcome = parser.parse("how many personnel are there")
        assert employees_db.execute(outcome.sql).scalar() == 5


class TestCrossTableGrouping:
    @pytest.fixture
    def shop(self):
        from repro.datasets import build_ecommerce_registry

        domain = build_ecommerce_registry(seed=0)
        from repro.kg import SchemaKnowledgeGraph

        kg = SchemaKnowledgeGraph(domain.registry.database.catalog)
        return domain, GroundedSemanticParser(kg, domain.vocabulary)

    def test_group_by_joined_column(self, shop):
        domain, parser = shop
        outcome = parser.parse("what is the average amount per category")
        assert outcome.intent.group_table == "products"
        assert outcome.intent.join is not None
        result = domain.registry.database.execute(outcome.sql)
        assert len(result.rows) == 5  # five product categories

    def test_superlative_over_joined_group(self, shop):
        domain, parser = shop
        outcome = parser.parse("which category has the highest total amount")
        result = domain.registry.database.execute(outcome.sql)
        assert result.rows[0][0] == domain.ground_truth.top_revenue_category

    def test_same_table_group_has_no_group_table(self, parser, employees_db):
        outcome = parser.parse("what is the average salary for each department")
        assert outcome.intent.group_table is None
        assert outcome.intent.join is None

    def test_group_table_requires_join_in_sqlgen(self):
        from repro.errors import TranslationError
        from repro.nl.grammar import AggregateSpec, QueryIntent
        from repro.nl.sqlgen import compile_intent

        intent = QueryIntent(
            table="orders",
            aggregates=[AggregateSpec("SUM", "amount")],
            group_by=["category"],
            group_table="products",
        )
        with pytest.raises(TranslationError):
            compile_intent(intent)
