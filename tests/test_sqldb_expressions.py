"""Tests for the expression evaluator: NULL semantics, operators, layout."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb.expressions import (
    BoundColumn,
    ExpressionEvaluator,
    RowContext,
    RowLayout,
    like_to_regex,
)
from repro.sqldb.parser import parse_expression


def make_row(**columns):
    layout = RowLayout(
        [BoundColumn(binding="t", name=name) for name in columns]
    )
    return RowContext(layout, tuple(columns.values()))


def evaluate(text, **columns):
    return ExpressionEvaluator().evaluate(parse_expression(text), make_row(**columns))


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_integer_division_exact(self):
        assert evaluate("6 / 3") == 2

    def test_integer_division_inexact_gives_float(self):
        assert evaluate("7 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1

    def test_modulo_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 % 0")

    def test_unary_minus(self):
        assert evaluate("-(2 + 3)") == -5

    def test_string_concat(self):
        assert evaluate("'a' || 'b'") == "ab"

    def test_concat_requires_strings(self):
        with pytest.raises(ExecutionError):
            evaluate("1 || 2")

    def test_arithmetic_with_column(self):
        assert evaluate("x * 2", x=21) == 42


class TestNullSemantics:
    def test_null_arithmetic(self):
        assert evaluate("x + 1", x=None) is None

    def test_null_comparison(self):
        assert evaluate("x = 1", x=None) is None

    def test_null_concat(self):
        assert evaluate("x || 'a'", x=None) is None

    def test_is_null(self):
        assert evaluate("x IS NULL", x=None) is True
        assert evaluate("x IS NULL", x=1) is False

    def test_is_not_null(self):
        assert evaluate("x IS NOT NULL", x=None) is False

    def test_kleene_and(self):
        assert evaluate("x AND TRUE", x=None) is None
        assert evaluate("x AND FALSE", x=None) is False

    def test_kleene_or(self):
        assert evaluate("x OR TRUE", x=None) is True
        assert evaluate("x OR FALSE", x=None) is None

    def test_not_null(self):
        assert evaluate("NOT x", x=None) is None

    def test_in_with_null_operand(self):
        assert evaluate("x IN (1, 2)", x=None) is None

    def test_in_with_null_item_no_match(self):
        # 3 IN (1, NULL) is UNKNOWN per SQL.
        assert evaluate("x IN (1, NULL)", x=3) is None

    def test_in_with_null_item_but_match(self):
        assert evaluate("x IN (3, NULL)", x=3) is True

    def test_not_in_with_null_item(self):
        assert evaluate("x NOT IN (1, NULL)", x=3) is None

    def test_between_null(self):
        assert evaluate("x BETWEEN 1 AND 2", x=None) is None

    def test_like_null(self):
        assert evaluate("x LIKE 'a%'", x=None) is None

    def test_case_no_match_no_else(self):
        assert evaluate("CASE WHEN x > 10 THEN 1 END", x=1) is None


class TestComparisons:
    def test_numeric_cross_type(self):
        assert evaluate("x = 2", x=2.0) is True

    def test_string_comparison(self):
        assert evaluate("x < 'b'", x="a") is True

    def test_mixed_type_comparison_fails(self):
        with pytest.raises(ExecutionError):
            evaluate("x = 1", x="a")

    def test_not_equal_synonyms(self):
        assert evaluate("1 <> 2") is True
        assert evaluate("1 != 2") is True

    @pytest.mark.parametrize(
        "text,expected",
        [("2 < 3", True), ("3 <= 3", True), ("4 > 5", False), ("5 >= 5", True)],
    )
    def test_ordering(self, text, expected):
        assert evaluate(text) is expected


class TestLike:
    def test_percent(self):
        assert evaluate("x LIKE 'a%'", x="abc") is True

    def test_underscore(self):
        assert evaluate("x LIKE 'a_c'", x="abc") is True
        assert evaluate("x LIKE 'a_c'", x="abbc") is False

    def test_not_like(self):
        assert evaluate("x NOT LIKE 'z%'", x="abc") is True

    def test_regex_escaping(self):
        assert like_to_regex("a.b").match("a.b")
        assert not like_to_regex("a.b").match("axb")

    def test_like_requires_strings(self):
        with pytest.raises(ExecutionError):
            evaluate("x LIKE 'a%'", x=1)


class TestBetweenAndIn:
    def test_between_inclusive(self):
        assert evaluate("x BETWEEN 1 AND 3", x=1) is True
        assert evaluate("x BETWEEN 1 AND 3", x=3) is True
        assert evaluate("x BETWEEN 1 AND 3", x=4) is False

    def test_not_between(self):
        assert evaluate("x NOT BETWEEN 1 AND 3", x=5) is True

    def test_in_match(self):
        assert evaluate("x IN (1, 2, 3)", x=2) is True

    def test_not_in_no_match(self):
        assert evaluate("x NOT IN (1, 2)", x=5) is True


class TestCase:
    def test_first_matching_branch_wins(self):
        result = evaluate(
            "CASE WHEN x > 5 THEN 'big' WHEN x > 1 THEN 'mid' ELSE 'small' END", x=3
        )
        assert result == "mid"

    def test_else(self):
        assert evaluate("CASE WHEN x > 5 THEN 1 ELSE 0 END", x=1) == 0


class TestLayout:
    def test_qualified_resolution(self):
        layout = RowLayout(
            [BoundColumn("a", "x"), BoundColumn("b", "x"), BoundColumn("b", "y")]
        )
        assert layout.resolve("x", "a") == 0
        assert layout.resolve("x", "b") == 1
        assert layout.resolve("y") == 2

    def test_ambiguous_unqualified(self):
        layout = RowLayout([BoundColumn("a", "x"), BoundColumn("b", "x")])
        with pytest.raises(ExecutionError):
            layout.resolve("x")

    def test_missing_column(self):
        layout = RowLayout([BoundColumn("a", "x")])
        with pytest.raises(ExecutionError):
            layout.resolve("nope")

    def test_case_insensitive(self):
        layout = RowLayout([BoundColumn("T", "Col")])
        assert layout.resolve("col", "t") == 0

    def test_concat(self):
        left = RowLayout([BoundColumn("a", "x")])
        right = RowLayout([BoundColumn("b", "y")])
        combined = left.concat(right)
        assert len(combined) == 2
        assert combined.resolve("y") == 1

    def test_has(self):
        layout = RowLayout([BoundColumn("a", "x")])
        assert layout.has("x")
        assert not layout.has("z")


class TestErrors:
    def test_boolean_context_requires_boolean(self):
        with pytest.raises(ExecutionError):
            evaluate("1 AND 2")

    def test_star_in_scalar_context(self):
        with pytest.raises(ExecutionError):
            evaluate("*")

    def test_aggregate_outside_group(self):
        with pytest.raises(ExecutionError):
            evaluate("COUNT(*)")
