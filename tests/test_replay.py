"""Replay harness: deterministic reproduction + divergence attribution.

The consumption side of the PR-5 loop (capture lives in
``tests/test_recorder.py``): a black box recorded on one engine replays
on a *fresh* engine with zero divergences; a config change injected into
the replay yields a non-empty, field-attributed report; and mutating any
single compared field of a recorded envelope flags exactly that field —
the property that makes the report trustworthy for bisection.

Replay tests build their own registry bundles instead of using the
shared session-scoped domain: record and replay must both start from a
cold query cache, or the cache hit/miss counters (part of each turn's
``metrics_delta``) would differ by test-ordering accident.
"""

from __future__ import annotations

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CDAEngine, ReliabilityConfig
from repro.datasets import build_swiss_labour_registry
from repro.obs import (
    BlackBox,
    blackbox_chrome_trace,
    diff_envelopes,
    replay_session,
)

#: A conversation that exercises the stateful paths: data queries, a
#: discovery turn that opens a clarification, its reply, and a
#: follow-up that refines the previous intent.
SCRIPT = (
    "how many employees are there",
    "average employees by canton",
    "what data do you have about employment",
    "employment",
    "and for bern",
)


def fresh_engine(config: ReliabilityConfig | None = None) -> CDAEngine:
    """An engine over its own cold registry bundle (header replayable)."""
    bundle = build_swiss_labour_registry(seed=0)
    engine = CDAEngine(
        bundle.registry,
        bundle.vocabulary,
        config=config if config is not None else ReliabilityConfig.full(),
    )
    if engine.recorder is not None:
        engine.recorder.context.update(
            domain="swiss", seed=0, llm_error_rate=None
        )
    return engine


def record_script(questions=SCRIPT) -> BlackBox:
    """Run ``questions`` on a fresh engine and return its black box."""
    engine = fresh_engine()
    for question in questions:
        engine.ask(question)
    return BlackBox.loads(engine.recorder.to_jsonl())


@pytest.fixture(scope="module")
def recorded_script() -> BlackBox:
    """One recorded conversation, shared read-only by this module
    (turn deltas are self-relative, so the global-registry resets
    between tests do not bleed into it)."""
    return record_script()


# -- healthy replay: zero divergences -----------------------------------------


class TestFaithfulReplay:
    def test_script_replays_with_zero_divergences(self, recorded_script):
        report = replay_session(recorded_script)
        assert report.diverged is False
        assert report.divergence_count == 0
        assert report.header_issues == []
        assert len(report.turns) == len(SCRIPT)
        assert "every turn reproduced exactly" in report.render_text()

    def test_hundred_turns_replay_exactly(self):
        questions = [SCRIPT[i % len(SCRIPT)] for i in range(100)]
        blackbox = record_script(questions)
        assert len(blackbox) == 100
        report = replay_session(blackbox)
        assert report.diverged is False
        assert report.divergence_count == 0
        assert len(report.turns) == 100

    def test_replay_carries_latency_diagnostics(self, recorded_script):
        report = replay_session(recorded_script)
        first = report.turns[0]
        assert first.latency_delta_s is not None
        assert "engine.execution" in first.stage_delta_ms
        recorded_ms, replayed_ms = first.stage_delta_ms["engine.execution"]
        assert recorded_ms > 0 and replayed_ms > 0

    def test_report_to_dict_is_json_safe(self, recorded_script):
        payload = replay_session(recorded_script).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["turns_replayed"] == len(SCRIPT)
        assert payload["diverged"] is False

    def test_replay_accepts_a_live_recorder(self):
        engine = fresh_engine()
        engine.ask(SCRIPT[0])
        report = replay_session(engine.recorder)
        assert report.diverged is False
        assert len(report.turns) == 1

    def test_replay_engine_must_record(self, recorded_script):
        disabled = fresh_engine(
            ReliabilityConfig(record_turns=False)
        )
        with pytest.raises(ValueError, match="record_turns"):
            replay_session(recorded_script, engine=disabled)


# -- injected config changes are field-attributed -----------------------------


class TestConfigInjection:
    def test_optimizer_off_flags_only_the_work_profile(self, recorded_script):
        report = replay_session(
            recorded_script, config_overrides={"use_query_optimizer": False}
        )
        # The interpreted executor returns identical results by design —
        # the recorder still catches the change through the per-turn
        # counter deltas (different machinery did the work).
        assert report.diverged is True
        assert report.fields_flagged() == ["metrics_delta"]

    def test_raised_abstention_threshold_flags_the_answers(
        self, recorded_script
    ):
        report = replay_session(
            recorded_script, config_overrides={"abstention_threshold": 0.99}
        )
        assert report.diverged is True
        flagged = report.fields_flagged()
        assert "kind" in flagged and "text" in flagged
        divergence = next(
            d for d in report.divergences() if d.field == "kind"
        )
        assert divergence.recorded == "data"
        assert divergence.replayed == "abstention"
        assert "field 'kind'" in divergence.describe()

    def test_fingerprint_mismatch_is_a_header_issue(self, recorded_script):
        tampered = copy.deepcopy(recorded_script)
        tampered.header["fingerprint"] = "0" * 64
        report = replay_session(tampered)
        assert report.diverged is True
        assert any("fingerprint mismatch" in issue for issue in report.header_issues)

    def test_dropped_turns_are_a_header_issue(self):
        engine = fresh_engine(ReliabilityConfig(recorder_capacity=2))
        engine.recorder.context.update(domain="swiss", seed=0)
        for question in SCRIPT[:3]:
            engine.ask(question)
        blackbox = BlackBox.loads(engine.recorder.to_jsonl())
        report = replay_session(blackbox)
        assert any("fell off" in issue for issue in report.header_issues)


# -- mutation flags exactly the mutated field ---------------------------------


def _mutate_sql(envelope):
    envelope["sql"] = (envelope["sql"] or "") + " -- tampered"
    return "sql"


def _mutate_text(envelope):
    envelope["text"] = envelope["text"] + " (edited)"
    return "text"


def _mutate_confidence(envelope):
    envelope["confidence"]["value"] = round(
        envelope["confidence"]["value"] / 2 + 0.001, 12
    )
    return "confidence"


def _mutate_rows(envelope):
    envelope["rows"][0][0] = 10_000_000
    return "rows"


def _mutate_kind(envelope):
    envelope["kind"] = "metadata" if envelope["kind"] == "data" else "data"
    return "kind"


def _mutate_metrics(envelope):
    name, value = next(iter(envelope["metrics_delta"].items()))
    envelope["metrics_delta"][name] = value + 1
    return "metrics_delta"


def _mutate_digest(envelope):
    digest = envelope["post_digest"]
    envelope["post_digest"] = ("0" if digest[0] != "0" else "1") + digest[1:]
    return "post_digest"


MUTATORS = (
    _mutate_sql,
    _mutate_text,
    _mutate_confidence,
    _mutate_rows,
    _mutate_kind,
    _mutate_metrics,
    _mutate_digest,
)


class TestMutationAttribution:
    @given(mutate=st.sampled_from(MUTATORS), turn=st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_diff_flags_exactly_the_mutated_field(
        self, recorded_script, mutate, turn
    ):
        recorded = recorded_script.turns[turn].outputs
        mutated = copy.deepcopy(recorded)
        field = mutate(mutated)
        assert [name for name, _r, _p in diff_envelopes(recorded, mutated)] == [
            field
        ]
        # And the unmutated envelope still diffs clean against itself.
        assert diff_envelopes(recorded, copy.deepcopy(recorded)) == []

    @pytest.mark.parametrize(
        "mutate", [_mutate_sql, _mutate_rows, _mutate_confidence]
    )
    def test_replay_report_attributes_the_tampered_field(
        self, recorded_script, mutate
    ):
        tampered = copy.deepcopy(recorded_script)
        field = mutate(tampered.turns[1].outputs)
        report = replay_session(tampered)
        assert report.diverged is True
        assert report.fields_flagged() == [field]
        (divergence,) = report.divergences()
        assert divergence.turn_index == 1
        clean_turns = [t for t in report.turns if t.turn_index != 1]
        assert all(not t.diverged for t in clean_turns)

    def test_informational_fields_are_never_flagged(self, recorded_script):
        recorded = recorded_script.turns[0].outputs
        mutated = copy.deepcopy(recorded)
        mutated["latency_s"] = 99.0
        mutated["stage_latency_ms"] = {}
        mutated["events"] = []
        mutated["trace"] = None
        assert diff_envelopes(recorded, mutated) == []


# -- CLI record → replay ------------------------------------------------------


class TestReplayCLI:
    def test_record_then_replay_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        path = tmp_path / "session.jsonl"
        monkeypatch.setattr(
            "sys.stdin", _FakeStdin(["how many employees are there", ""])
        )
        assert main(["--domain", "swiss", "--record", str(path)]) == 0
        capsys.readouterr()
        exit_code = main(["--replay", str(path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "0 divergences" in out
        assert "every turn reproduced exactly" in out

    def test_replay_exits_nonzero_on_divergence(self, tmp_path, capsys):
        from repro.__main__ import main

        blackbox = record_script(SCRIPT[:1])
        blackbox.turns[0].outputs["sql"] = "SELECT 42"
        path = tmp_path / "tampered.jsonl"
        lines = [json.dumps(blackbox.header, sort_keys=True)]
        lines.extend(
            json.dumps(turn.to_dict(), sort_keys=True) for turn in blackbox.turns
        )
        path.write_text("\n".join(lines) + "\n")
        exit_code = main(["--replay", str(path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "field 'sql'" in out


class _FakeStdin:
    """Just enough of a stdin for the CLI's input() loop."""

    def __init__(self, lines):
        self._lines = iter(lines)

    def readline(self):
        try:
            return next(self._lines) + "\n"
        except StopIteration:
            return ""


# -- session-timeline export --------------------------------------------------


class TestBlackboxChromeTrace:
    def test_turns_lay_out_sequentially(self, recorded_script):
        document = blackbox_chrome_trace(recorded_script)
        events = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        roots = [e for e in events if e["name"] == "engine.ask"]
        assert len(roots) == len(SCRIPT)
        starts = [e["ts"] for e in roots]
        assert starts == sorted(starts)
        for earlier, later in zip(roots, roots[1:]):
            assert later["ts"] >= earlier["ts"] + earlier["dur"] - 1e-6
        assert [e["args"]["turn_index"] for e in roots] == list(range(len(SCRIPT)))
        assert json.loads(json.dumps(document)) == document

    def test_untraced_turns_get_a_synthetic_span(self):
        engine = fresh_engine(ReliabilityConfig(tracing=False))
        engine.recorder.context.update(domain="swiss", seed=0)
        engine.ask(SCRIPT[0])
        blackbox = BlackBox.loads(engine.recorder.to_jsonl())
        document = blackbox_chrome_trace(blackbox)
        spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "engine.ask"
        assert spans[0]["dur"] > 0
