"""Cross-module integration tests: whole-system behaviours."""

import numpy as np
import pytest

from repro.benchgen import WorkloadSpec, build_workload, execution_accuracy
from repro.core import AnswerKind, CDAEngine, ReliabilityConfig
from repro.datasets import build_ecommerce_registry, build_swiss_labour_registry
from repro.guidance import SimulatedUser, UserGoal
from repro.kg import SchemaKnowledgeGraph
from repro.nl import GroundedSemanticParser, SimulatedLLM


class TestParserOverGeneratedWorkloads:
    """The grounded parser must solve clean generated workloads near-perfectly."""

    def test_clean_workload_high_accuracy(self):
        workload = build_workload(
            WorkloadSpec(n_questions_per_domain=18, n_domains=3, seed=21)
        )
        correct = 0
        for item in workload.items:
            kg = SchemaKnowledgeGraph(item.spec.database.catalog)
            parser = GroundedSemanticParser(kg)
            try:
                outcome = parser.parse(item.surface_question)
                result = item.spec.database.execute(outcome.sql)
            except Exception:  # noqa: BLE001 - count as failure
                continue
            ordered = item.case.template == "top_n"
            if execution_accuracy(result.rows, item.case.gold_rows, ordered=ordered):
                correct += 1
        assert correct / len(workload.items) >= 0.9

    def test_noise_degrades_gracefully(self):
        def accuracy(strength):
            workload = build_workload(
                WorkloadSpec(
                    n_questions_per_domain=12, n_domains=2,
                    paraphrase_strength=strength, seed=22,
                )
            )
            correct = 0
            for item in workload.items:
                kg = SchemaKnowledgeGraph(item.spec.database.catalog)
                parser = GroundedSemanticParser(kg)
                try:
                    outcome = parser.parse(item.surface_question)
                    result = item.spec.database.execute(outcome.sql)
                except Exception:  # noqa: BLE001
                    continue
                ordered = item.case.template == "top_n"
                if execution_accuracy(
                    result.rows, item.case.gold_rows, ordered=ordered
                ):
                    correct += 1
            return correct / len(workload.items)

        clean = accuracy(0.0)
        noisy = accuracy(0.8)
        assert clean >= 0.9
        assert noisy >= 0.5  # degraded but not collapsed
        assert clean >= noisy


class TestEndToEndReliability:
    """E7 in miniature: full CDA beats LLM-only on an unreliable generator."""

    def run_condition(self, config, error_rate, n_questions=12):
        workload = build_workload(
            WorkloadSpec(n_questions_per_domain=n_questions, n_domains=1, seed=31)
        )
        correct = 0
        wrong = 0
        abstained = 0
        for item in workload.items:
            from repro.datasets.registry import DataSourceRegistry

            registry = DataSourceRegistry(item.spec.database)
            llm = SimulatedLLM(
                item.spec.database.catalog, error_rate=error_rate, seed=41
            )
            engine = CDAEngine(registry, config=config, llm=llm)
            answer = engine.ask(
                item.case.question, llm_gold_sql=item.case.gold_sql
            )
            if answer.kind is AnswerKind.DATA:
                ordered = item.case.template == "top_n"
                if execution_accuracy(
                    answer.rows, item.case.gold_rows, ordered=ordered
                ):
                    correct += 1
                else:
                    wrong += 1
            else:
                abstained += 1
        return correct, wrong, abstained

    def test_full_cda_fewer_wrong_answers_than_llm_only(self):
        llm_correct, llm_wrong, _ = self.run_condition(
            ReliabilityConfig.llm_only(), error_rate=0.5
        )
        cda_correct, cda_wrong, _ = self.run_condition(
            ReliabilityConfig.full(), error_rate=0.5
        )
        assert cda_wrong < max(llm_wrong, 1)
        assert cda_correct >= llm_correct

    def test_grounded_parser_ignores_llm_noise(self):
        # With the parser on, even a 100%-hallucinating LLM cannot hurt
        # questions the parser translates itself.
        correct, wrong, _ = self.run_condition(
            ReliabilityConfig.full(), error_rate=1.0
        )
        assert wrong <= 1
        assert correct >= 8


class TestGuidedDialogues:
    """E6 in miniature: clarification converts failures into successes."""

    def make_engine(self, mode):
        from repro.guidance.clarification import ClarificationMode

        domain = build_swiss_labour_registry(seed=17)
        config = ReliabilityConfig(clarification_mode=ClarificationMode(mode))
        return CDAEngine(domain.registry, domain.vocabulary, config=config)

    def run_dialogue(self, engine, user):
        answer = engine.ask(user.opening_question())
        while not user.exhausted:
            if answer.kind is AnswerKind.CLARIFICATION and answer.clarification:
                answer = engine.ask(user.answer_clarification(answer.clarification))
            elif answer.kind is AnswerKind.DISCOVERY and answer.clarification:
                answer = engine.ask(user.answer_clarification(answer.clarification))
            elif answer.kind is AnswerKind.DATA:
                return user.judge_answer(answer.rows), user.turns_spoken
            elif answer.kind is AnswerKind.METADATA:
                # The right dataset is in focus now; ask the real question.
                answer = engine.ask(user.rephrase())
            elif answer.kind in (AnswerKind.ABSTENTION, AnswerKind.ERROR):
                answer = engine.ask(user.rephrase())
            else:
                return user.judge_answer(answer.rows), user.turns_spoken
        return False, user.turns_spoken

    def test_vague_goal_reached_through_guidance(self):
        engine = self.make_engine("when_ambiguous")
        goal = UserGoal(
            clear_question="how many employment records are there",
            vague_question="tell me something about the jobs data",
            gold_sql="SELECT COUNT(*) FROM employment",
            gold_rows=[(160,)],
            target_terms=["employment"],
        )
        user = SimulatedUser(goal, ambiguous_opening=True, patience=6)
        success, _turns = self.run_dialogue(engine, user)
        assert success

    def test_clear_question_needs_fewer_turns(self):
        goal = UserGoal(
            clear_question="how many cantons are there",
            vague_question="what about the regions",
            gold_sql="SELECT COUNT(*) FROM cantons",
            gold_rows=[(8,)],
            target_terms=["cantons"],
        )
        engine = self.make_engine("when_ambiguous")
        clear_user = SimulatedUser(goal, ambiguous_opening=False, patience=6)
        success, turns = self.run_dialogue(engine, clear_user)
        assert success
        assert turns == 1


class TestProvenanceAcrossTheStack:
    def test_answer_sources_trace_to_base_rows(self):
        domain = build_ecommerce_registry(seed=19)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        answer = engine.ask("how many customers are there")
        assert answer.explanation is not None
        for table, row_id in answer.explanation.source_rows:
            record = engine.database.fetch_source_row(table, row_id)
            assert record  # every cited row is fetchable

    def test_session_tracker_builds_graph(self):
        domain = build_swiss_labour_registry(seed=23)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        engine.ask("how many cantons are there")
        graph = engine.session.tracker.build_graph()
        assert len(graph) >= 2


class TestDeterminismEndToEnd:
    def test_same_seed_same_conversation(self):
        answers = []
        for _ in range(2):
            domain = build_swiss_labour_registry(seed=29)
            engine = CDAEngine(domain.registry, domain.vocabulary)
            first = engine.ask("how many employment records are there")
            second = engine.ask("what is the barometer?")
            answers.append((first.text, first.rows, second.text))
        assert answers[0] == answers[1]
