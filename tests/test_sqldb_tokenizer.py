"""Tests for the SQL lexer."""

import pytest

from repro.errors import TokenizeError
from repro.sqldb.tokenizer import Token, TokenType, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT MyColumn")
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "MyColumn"

    def test_eof_is_appended(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INTEGER
        assert token.value == "42"

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.type is TokenType.FLOAT

    def test_float_with_exponent(self):
        token = tokenize("1.5e-3")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == "1.5e-3"

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == ".5"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello world"

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_quoted_identifier(self):
        token = tokenize('"select"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "select"


class TestOperators:
    @pytest.mark.parametrize(
        "operator", ["=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "||"]
    )
    def test_operator_roundtrip(self, operator):
        token = tokenize(f"a {operator} b")[1]
        assert token.type is TokenType.OPERATOR
        assert token.value == operator

    def test_two_char_operator_not_split(self):
        assert values("a <= b") == ["a", "<=", "b"]

    def test_punctuation(self):
        tokens = tokenize("(a, b);")
        punct = [t.value for t in tokens if t.type is TokenType.PUNCTUATION]
        assert punct == ["(", ",", ")", ";"]


class TestCommentsAndWhitespace:
    def test_line_comment_is_skipped(self):
        assert values("SELECT a -- comment here\nFROM t") == ["SELECT", "a", "FROM", "t"]

    def test_trailing_comment_without_newline(self):
        assert values("SELECT 1 -- done") == ["SELECT", "1"]

    def test_whitespace_variants(self):
        assert values("SELECT\t1\n,\r 2") == ["SELECT", "1", ",", "2"]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(TokenizeError):
            tokenize('"oops')

    def test_empty_quoted_identifier(self):
        with pytest.raises(TokenizeError):
            tokenize('""')

    def test_unknown_character(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("SELECT @x")
        assert excinfo.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("SELECT abc")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestTokenHelpers:
    def test_matches_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches_keyword("SELECT", "FROM")
        assert not token.matches_keyword("FROM")

    def test_identifier_never_matches_keyword(self):
        token = Token(TokenType.IDENTIFIER, "SELECT", 0)
        assert not token.matches_keyword("SELECT")
