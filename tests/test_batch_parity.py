"""Parity suite for the batched retrieval hot path.

The batched kernels (``search_batch``, ``embed_batch``, vectorised HNSW
expansion, array-form BM25) promise *bit-identical* results to the
single-query path: same ids in the same order, same distances, same
tie-breaks, and the same ``distance_computations`` accounting.  These
tests pin that promise — with hypothesis-driven random workloads across
every index family, against hand-captured pre-batch counter values, and
against a straight-line reference reimplementation of the original BM25
scoring loop.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.bm25 import BM25Index
from repro.retrieval.documents import Document, DocumentStore
from repro.vector import (
    BruteForceIndex,
    HNSWIndex,
    IVFIndex,
    LSHIndex,
    LearnedStopIVFIndex,
    Metric,
    ProgressiveIndex,
    generate_clustered_dataset,
)
from repro.vector.dataset import generate_query_set
from repro.vector.embedding import HashingEmbedder, tokenize_text

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _assert_result_parity(single, batched, label=""):
    assert single.ids == batched.ids, label
    assert single.distances == batched.distances, label
    assert single.distance_computations == batched.distance_computations, label
    assert single.candidates_visited == batched.candidates_visited, label


def _make_workload(seed, n_points=120, dim=6, n_queries=4):
    rng = np.random.default_rng(seed)
    dataset = generate_clustered_dataset(n_points, dim, 3, rng)
    queries = generate_query_set(dataset, n_queries, rng)
    return dataset, queries


INDEX_FACTORIES = {
    "brute": lambda metric: BruteForceIndex(metric=metric),
    "ivf": lambda metric: IVFIndex(n_lists=6, n_probe=2, seed=1, metric=metric),
    "hnsw": lambda metric: HNSWIndex(
        m=4, ef_construction=16, ef_search=10, seed=1, metric=metric
    ),
    "lsh": lambda metric: LSHIndex(n_tables=4, n_bits=6, seed=1, metric=metric),
    "progressive": lambda metric: ProgressiveIndex(delta=0.1, seed=1, metric=metric),
}


# ---------------------------------------------------------------------------
# hypothesis parity: search_batch == sequential search
# ---------------------------------------------------------------------------


class TestSearchBatchParity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 500),
        kind=st.sampled_from(sorted(INDEX_FACTORIES)),
        metric=st.sampled_from([Metric.L2, Metric.COSINE]),
        k=st.integers(1, 12),
    )
    def test_batch_matches_sequential(self, seed, kind, metric, k):
        dataset, queries = _make_workload(seed)
        index = INDEX_FACTORIES[kind](metric)
        index.build(dataset)
        singles = [index.search(query, k) for query in queries]
        batched = index.search_batch(queries, k)
        assert len(batched) == len(queries)
        for single, batch in zip(singles, batched):
            _assert_result_parity(single, batch, f"{kind}/{metric.value}/k={k}")

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 200), k=st.integers(1, 8))
    def test_learned_stop_batch_matches_sequential(self, seed, k):
        dataset, queries = _make_workload(seed)
        index = LearnedStopIVFIndex(n_lists=6, seed=1)
        index.build(dataset)
        train_queries = generate_query_set(dataset, 16, np.random.default_rng(seed + 1))
        index.train(train_queries, k=k)
        singles = [index.search(query, k) for query in queries]
        batched = index.search_batch(queries, k)
        for single, batch in zip(singles, batched):
            _assert_result_parity(single, batch, "learned_stop")
            assert (
                single.metadata["predicted_probes"]
                == batch.metadata["predicted_probes"]
            )

    def test_duplicate_points_tie_break_identical(self):
        # Exact duplicates force distance ties; batch and single paths
        # must break them identically (by dataset position).
        rng = np.random.default_rng(7)
        base = rng.normal(size=(10, 4))
        vectors = np.vstack([base, base, base])
        from repro.vector import VectorDataset

        dataset = VectorDataset(vectors=vectors, ids=list(range(len(vectors))))
        queries = base[:4] + 1e-12
        for kind in ("brute", "ivf", "lsh"):
            index = INDEX_FACTORIES[kind](Metric.L2)
            index.build(dataset)
            for single, batch in zip(
                [index.search(query, 8) for query in queries],
                index.search_batch(queries, 8),
            ):
                _assert_result_parity(single, batch, kind)

    def test_batch_validation(self):
        dataset, queries = _make_workload(0)
        index = BruteForceIndex()
        index.build(dataset)
        assert index.search_batch(np.empty((0, dataset.dim)), 3) == []
        with pytest.raises(Exception):
            index.search_batch(queries[0], 3)  # 1-d input rejected
        with pytest.raises(Exception):
            index.search_batch(queries[:, :-1], 3)  # dim mismatch


# ---------------------------------------------------------------------------
# HNSW: vectorised expansion == scalar expansion
# ---------------------------------------------------------------------------


class TestHNSWVectorizedParity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 300), k=st.integers(1, 10))
    def test_vectorized_matches_scalar(self, seed, k):
        dataset, queries = _make_workload(seed)
        scalar = HNSWIndex(m=4, ef_construction=16, ef_search=12, seed=1, vectorized=False)
        vectorized = HNSWIndex(m=4, ef_construction=16, ef_search=12, seed=1)
        scalar.build(dataset)
        vectorized.build(dataset)
        # Construction must produce the same graph under both modes.
        assert scalar._graph == vectorized._graph
        assert scalar._entry_point == vectorized._entry_point
        for query in queries:
            _assert_result_parity(scalar.search(query, k), vectorized.search(query, k))


# ---------------------------------------------------------------------------
# counter pinning against pre-batch values
# ---------------------------------------------------------------------------


class TestDistanceCounterPinning:
    """Values captured from the repository *before* the batched kernels
    landed (per-edge ``single_distance`` HNSW, per-vector IVF scan).  The
    batched kernels must charge identical work.
    """

    @pytest.fixture()
    def workload(self):
        rng = np.random.default_rng(42)
        dataset = generate_clustered_dataset(300, 8, 4, rng)
        queries = generate_query_set(dataset, 5, rng)
        return dataset, queries

    def test_hnsw_counter_pinned(self, workload):
        dataset, queries = workload
        index = HNSWIndex(m=4, ef_construction=16, ef_search=12, seed=1)
        index.build(dataset)
        results = [index.search(query, 5) for query in queries]
        assert [r.distance_computations for r in results] == [55, 73, 64, 60, 76]
        assert results[0].ids == [74, 78, 136, 206, 244]
        assert results[1].ids == [66, 246, 230, 295, 94]

    def test_ivf_counter_pinned(self, workload):
        dataset, queries = workload
        index = IVFIndex(n_lists=8, n_probe=2, seed=1)
        index.build(dataset)
        results = [index.search(query, 5) for query in queries]
        assert [r.distance_computations for r in results] == [57, 80, 150, 65, 150]

    def test_batch_counters_match_pinned(self, workload):
        dataset, queries = workload
        hnsw = HNSWIndex(m=4, ef_construction=16, ef_search=12, seed=1)
        hnsw.build(dataset)
        ivf = IVFIndex(n_lists=8, n_probe=2, seed=1)
        ivf.build(dataset)
        assert [
            r.distance_computations for r in hnsw.search_batch(queries, 5)
        ] == [55, 73, 64, 60, 76]
        assert [
            r.distance_computations for r in ivf.search_batch(queries, 5)
        ] == [57, 80, 150, 65, 150]


# ---------------------------------------------------------------------------
# embed_batch == stacked embed
# ---------------------------------------------------------------------------


TEXT_ALPHABET = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127)
    | st.sampled_from(" .,-_"),
    max_size=60,
)


class TestEmbedBatchParity:
    @settings(max_examples=20, deadline=None)
    @given(texts=st.lists(TEXT_ALPHABET, min_size=1, max_size=8))
    def test_batch_matches_stacked_singles(self, texts):
        embedder = HashingEmbedder(dim=32)
        stacked = np.stack([embedder.embed(text) for text in texts])
        batched = embedder.embed_batch(texts)
        assert batched.shape == stacked.shape
        assert np.array_equal(batched, stacked)

    def test_empty_batch(self):
        embedder = HashingEmbedder(dim=16)
        assert embedder.embed_batch([]).shape == (0, 16)


# ---------------------------------------------------------------------------
# BM25: vectorised scoring == reference loop; add_document regression
# ---------------------------------------------------------------------------


def _reference_bm25_search(index, query, k):
    """The original per-document Python scoring loop, kept verbatim as a
    behavioural reference for the vectorised implementation.
    """
    if index._n_documents == 0:
        return []
    scores = {}
    for term in tokenize_text(query):
        postings = index._postings.get(term)
        if not postings:
            continue
        idf = index._idf(term)
        for doc_id, frequency in postings.items():
            length_norm = 1.0 - index.b + index.b * (
                index._doc_lengths[doc_id] / index._average_length
            )
            contribution = idf * (
                frequency * (index.k1 + 1.0)
                / (frequency + index.k1 * length_norm)
            )
            scores[doc_id] = scores.get(doc_id, 0.0) + contribution
    ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
    return [(doc_id, score) for doc_id, score in ranked[:k]]


WORDS = ["labour", "force", "swiss", "canton", "rate", "survey", "data", "health"]


@st.composite
def corpora(draw):
    n_docs = draw(st.integers(2, 10))
    docs = []
    for i in range(n_docs):
        tokens = draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=12))
        docs.append((f"doc-{i}", " ".join(tokens)))
    return docs


class TestBM25Parity:
    @settings(max_examples=25, deadline=None)
    @given(
        docs=corpora(),
        query_terms=st.lists(st.sampled_from(WORDS), min_size=1, max_size=5),
        k=st.integers(1, 8),
    )
    def test_vectorised_matches_reference(self, docs, query_terms, k):
        store = DocumentStore()
        for doc_id, text in docs:
            store.add_text(doc_id, title=doc_id, text=text)
        index = BM25Index()
        index.build(store)
        query = " ".join(query_terms)
        reference = _reference_bm25_search(index, query, k)
        actual = index.search(query, k)
        assert [hit.doc_id for hit in actual] == [d for d, _ in reference]
        for hit, (_, score) in zip(actual, reference):
            assert math.isclose(hit.score, score, rel_tol=0.0, abs_tol=0.0) or (
                hit.score == score
            )

    def test_readd_document_replaces_old_postings(self):
        # Regression: re-adding a doc_id used to leave the old version's
        # postings in place and inflate the running average length.
        index = BM25Index()
        index.add_document(
            Document(doc_id="d1", title="old", text="zebra zebra zebra zebra")
        )
        index.add_document(Document(doc_id="d2", title="other", text="labour force"))
        index.add_document(Document(doc_id="d1", title="new", text="labour survey"))
        # The stale term must no longer hit d1.
        assert [hit.doc_id for hit in index.search("zebra", 5)] == []
        assert "d1" in {hit.doc_id for hit in index.search("labour", 5)}
        # Statistics reflect exactly the two live documents.
        assert index._n_documents == 2
        expected_avg = (
            len(tokenize_text("new\nlabour survey"))
            + len(tokenize_text("other\nlabour force"))
        ) / 2
        assert index._average_length == expected_avg

    def test_readd_matches_fresh_build(self):
        # After replacement the index must rank exactly like one built
        # from scratch over the final corpus.
        index = BM25Index()
        index.add_document(Document(doc_id="a", title="t", text="swiss labour data"))
        index.add_document(Document(doc_id="b", title="t", text="health survey"))
        index.add_document(Document(doc_id="a", title="t", text="canton health rate"))

        store = DocumentStore()
        store.add_text("a", title="t", text="canton health rate")
        store.add_text("b", title="t", text="health survey")
        fresh = BM25Index()
        fresh.build(store)

        for query in ("health", "canton rate", "swiss labour", "survey"):
            incremental = [(h.doc_id, h.score) for h in index.search(query, 5)]
            rebuilt = [(h.doc_id, h.score) for h in fresh.search(query, 5)]
            assert incremental == rebuilt

    def test_search_batch_matches_singles(self):
        store = DocumentStore()
        store.add_text("a", title="labour", text="swiss labour force survey")
        store.add_text("b", title="health", text="health canton data")
        store.add_text("c", title="rates", text="rate rate labour")
        index = BM25Index()
        index.build(store)
        queries = ["labour force", "health", "rate survey", "missingterm"]
        batched = index.search_batch(queries, 3)
        singles = [index.search(query, 3) for query in queries]
        assert [
            [(h.doc_id, h.score) for h in ranking] for ranking in batched
        ] == [[(h.doc_id, h.score) for h in ranking] for ranking in singles]
