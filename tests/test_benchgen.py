"""Tests for benchmark generation and metrics."""

import numpy as np
import pytest

from repro.benchgen import (
    QuestionGenerator,
    WorkloadSpec,
    build_workload,
    exact_match,
    execution_accuracy,
    generate_random_database,
    mean_reciprocal_rank,
    ndcg_at_k,
    recall_at_k,
)
from repro.benchgen.question_gen import QuestionCase
from repro.benchgen.metrics import mean_ndcg_at_k


class TestSchemaGen:
    def test_two_tables_with_fk(self):
        rng = np.random.default_rng(0)
        spec = generate_random_database(rng, n_rows=30)
        assert len(spec.database.catalog) == 2
        assert spec.database.catalog.foreign_keys

    def test_row_count(self):
        rng = np.random.default_rng(0)
        spec = generate_random_database(rng, n_rows=45)
        assert len(spec.database.catalog.table(spec.entity_table)) == 45

    def test_archetypes_differ(self):
        rng = np.random.default_rng(0)
        a = generate_random_database(rng, archetype_index=0)
        b = generate_random_database(rng, archetype_index=1)
        assert a.entity_table != b.entity_table

    def test_determinism(self):
        a = generate_random_database(np.random.default_rng(5), archetype_index=0)
        b = generate_random_database(np.random.default_rng(5), archetype_index=0)
        assert a.database.catalog.table(a.entity_table).rows() == (
            b.database.catalog.table(b.entity_table).rows()
        )


class TestQuestionGen:
    @pytest.fixture
    def generator(self):
        rng = np.random.default_rng(1)
        spec = generate_random_database(rng, n_rows=60, archetype_index=0)
        return QuestionGenerator(spec, rng)

    @pytest.mark.parametrize("template", QuestionGenerator.TEMPLATES)
    def test_every_template_produces_consistent_case(self, template, generator):
        case = generator.generate(template)
        assert isinstance(case, QuestionCase)
        # Gold rows must be reproducible from gold SQL.
        replay = generator.spec.database.execute(case.gold_sql)
        assert list(replay.rows) == case.gold_rows

    def test_generate_many_round_robin(self, generator):
        cases = generator.generate_many(9)
        assert len(cases) == 9
        assert len({case.template for case in cases}) == 9

    def test_questions_are_english(self, generator):
        case = generator.generate("count_all")
        assert case.question.startswith("how many")

    def test_gold_answers_non_trivial(self, generator):
        # Filters derived from data quantiles: results should not be empty.
        for template in ("agg_numeric_filter", "list_filter", "join_filter"):
            case = generator.generate(template)
            assert case.gold_rows


class TestWorkload:
    def test_build_respects_spec(self):
        workload = build_workload(
            WorkloadSpec(n_questions_per_domain=6, n_domains=2, seed=3)
        )
        assert len(workload) == 12
        domains = {item.case.domain for item in workload.items}
        assert len(domains) == 2

    def test_paraphrase_strength_zero_keeps_questions(self):
        workload = build_workload(
            WorkloadSpec(n_questions_per_domain=4, n_domains=1, seed=3)
        )
        assert all(
            item.surface_question == item.case.question for item in workload.items
        )

    def test_paraphrase_strength_one_changes_some(self):
        workload = build_workload(
            WorkloadSpec(
                n_questions_per_domain=8, n_domains=1,
                paraphrase_strength=1.0, seed=3,
            )
        )
        changed = sum(
            1
            for item in workload.items
            if item.surface_question != item.case.question
        )
        assert changed >= 4

    def test_by_template_grouping(self):
        workload = build_workload(
            WorkloadSpec(n_questions_per_domain=9, n_domains=1, seed=3)
        )
        groups = workload.by_template()
        assert sum(len(items) for items in groups.values()) == 9

    def test_determinism(self):
        spec = WorkloadSpec(n_questions_per_domain=5, n_domains=2,
                            paraphrase_strength=0.5, seed=9)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [i.surface_question for i in a.items] == [
            i.surface_question for i in b.items
        ]


class TestMetrics:
    def test_execution_accuracy_unordered(self):
        assert execution_accuracy([(1,), (2,)], [(2,), (1,)])
        assert not execution_accuracy([(1,)], [(2,)])

    def test_execution_accuracy_ordered(self):
        assert not execution_accuracy([(1,), (2,)], [(2,), (1,)], ordered=True)
        assert execution_accuracy([(1,), (2,)], [(1,), (2,)], ordered=True)

    def test_execution_accuracy_none_prediction(self):
        assert not execution_accuracy(None, [(1,)])

    def test_exact_match_normalises(self):
        assert exact_match("select a from t", "SELECT a FROM t")
        assert not exact_match("SELECT a FROM t", "SELECT b FROM t")
        assert not exact_match("not sql", "SELECT a FROM t")

    def test_mrr(self):
        rankings = [["a", "b"], ["b", "a"], ["c"]]
        relevant = [{"a"}, {"a"}, {"a"}]
        assert mean_reciprocal_rank(rankings, relevant) == pytest.approx(
            (1.0 + 0.5 + 0.0) / 3
        )

    def test_ndcg_perfect(self):
        assert ndcg_at_k(["a", "b"], {"a": 2, "b": 1}, 2) == pytest.approx(1.0)

    def test_ndcg_inverted_lower(self):
        good = ndcg_at_k(["a", "b"], {"a": 2, "b": 1}, 2)
        bad = ndcg_at_k(["b", "a"], {"a": 2, "b": 1}, 2)
        assert bad < good

    def test_ndcg_no_relevance(self):
        assert ndcg_at_k(["x"], {}, 3) == 0.0

    def test_mean_ndcg(self):
        value = mean_ndcg_at_k(
            [["a"], ["b"]], [{"a": 1}, {"a": 1}], k=1
        )
        assert value == pytest.approx(0.5)

    def test_recall_at_k(self):
        assert recall_at_k(["a", "b", "c"], {"a", "c"}, 2) == pytest.approx(0.5)
        assert recall_at_k([], set(), 5) == 1.0

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([], [])
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], {"a": 1}, 0)
