"""Tests for provenance: semiring, graph model, tracker, explanations."""

import pytest

from repro.errors import (
    InvertibilityViolation,
    LosslessnessViolation,
    ProvenanceError,
)
from repro.provenance import (
    ExplanationBuilder,
    Monomial,
    Polynomial,
    ProvenanceGraph,
    ProvenanceNode,
    ProvenanceNodeKind,
    ProvenanceTracker,
    check_invertibility,
    check_losslessness,
)
from repro.provenance.explanation import (
    explain_difference,
    merge_explanations,
    require_invertible,
    require_lossless,
)
from repro.provenance.model import source_row_id
from repro.provenance.semiring import parse_row_variable, row_variable


class TestSemiring:
    def test_var_and_str(self):
        assert str(Polynomial.var("a")) == "a"

    def test_addition_merges_like_terms(self):
        poly = Polynomial.var("a") + Polynomial.var("a")
        assert str(poly) == "2*a"
        assert poly.derivation_count == 2

    def test_multiplication_builds_monomials(self):
        poly = Polynomial.var("a") * Polynomial.var("b")
        assert str(poly) == "a*b"

    def test_squaring(self):
        poly = Polynomial.var("a") * Polynomial.var("a")
        assert str(poly) == "a^2"

    def test_distributivity(self):
        a, b, c = (Polynomial.var(name) for name in "abc")
        left = a * (b + c)
        right = a * b + a * c
        assert left == right

    def test_identities(self):
        a = Polynomial.var("a")
        assert a + Polynomial.zero() == a
        assert a * Polynomial.one() == a
        assert (a * Polynomial.zero()).is_zero

    def test_variables(self):
        poly = Polynomial.var("a") * Polynomial.var("b") + Polynomial.var("c")
        assert poly.variables == {"a", "b", "c"}

    def test_counting_evaluation(self):
        # 2ab + c with a=3, b=1, c=5 -> 2*3*1 + 5 = 11
        poly = (
            Polynomial.var("a") * Polynomial.var("b")
            + Polynomial.var("a") * Polynomial.var("b")
            + Polynomial.var("c")
        )
        assert poly.evaluate({"a": 3, "b": 1, "c": 5}) == 11

    def test_boolean_evaluation(self):
        poly = Polynomial.var("a") * Polynomial.var("b") + Polynomial.var("c")
        value = poly.evaluate(
            {"a": True, "b": False, "c": False},
            add=lambda x, y: x or y,
            multiply=lambda x, y: x and y,
            zero=False,
            one=True,
        )
        assert value is False

    def test_evaluation_missing_variable(self):
        with pytest.raises(KeyError):
            Polynomial.var("a").evaluate({})

    def test_row_variable_roundtrip(self):
        variable = row_variable("emp", 7)
        assert parse_row_variable(variable) == ("emp", 7)

    def test_monomial_degree(self):
        mono = Monomial.of("a").multiply(Monomial.of("a")).multiply(Monomial.of("b"))
        assert mono.degree == 3


class TestProvenanceGraph:
    def build(self):
        graph = ProvenanceGraph()
        graph.add_node(ProvenanceNode("row:t:0", ProvenanceNodeKind.SOURCE_ROW, "r0"))
        graph.add_node(ProvenanceNode("sql:q1", ProvenanceNodeKind.QUERY, "q1"))
        graph.add_node(ProvenanceNode("answer:0", ProvenanceNodeKind.ANSWER, "a0"))
        graph.add_edge("row:t:0", "sql:q1")
        graph.add_edge("sql:q1", "answer:0")
        return graph

    def test_where_from(self):
        graph = self.build()
        ancestors = {node.node_id for node in graph.where_from("answer:0")}
        assert ancestors == {"row:t:0", "sql:q1"}

    def test_where_to(self):
        graph = self.build()
        descendants = {node.node_id for node in graph.where_to("row:t:0")}
        assert "answer:0" in descendants

    def test_sources_of_filters_to_leaves(self):
        graph = self.build()
        sources = [node.node_id for node in graph.sources_of("answer:0")]
        assert sources == ["row:t:0"]

    def test_answers_touched_by(self):
        graph = self.build()
        answers = [node.node_id for node in graph.answers_touched_by("row:t:0")]
        assert answers == ["answer:0"]

    def test_derivation_path(self):
        graph = self.build()
        path = [node.node_id for node in graph.derivation_path("row:t:0", "answer:0")]
        assert path == ["row:t:0", "sql:q1", "answer:0"]

    def test_no_path_raises(self):
        graph = self.build()
        graph.add_node(ProvenanceNode("doc:x", ProvenanceNodeKind.DOCUMENT, "x"))
        with pytest.raises(ProvenanceError):
            graph.derivation_path("doc:x", "answer:0")

    def test_cycle_rejected(self):
        graph = self.build()
        with pytest.raises(ProvenanceError):
            graph.add_edge("answer:0", "row:t:0")

    def test_idempotent_add(self):
        graph = self.build()
        size = len(graph)
        graph.add_node(ProvenanceNode("row:t:0", ProvenanceNodeKind.SOURCE_ROW, "r0"))
        assert len(graph) == size

    def test_kind_conflict_rejected(self):
        graph = self.build()
        with pytest.raises(ProvenanceError):
            graph.add_node(
                ProvenanceNode("row:t:0", ProvenanceNodeKind.ANSWER, "oops")
            )

    def test_topological_order(self):
        graph = self.build()
        order = [node.node_id for node in graph.topological_order()]
        assert order.index("row:t:0") < order.index("answer:0")


class TestTracker:
    def test_records_accumulate_in_order(self):
        tracker = ProvenanceTracker()
        tracker.record("a", ProvenanceNodeKind.QUERY, "first")
        tracker.record("b", ProvenanceNodeKind.COMPUTATION, "second")
        assert [r.ordinal for r in tracker.records] == [0, 1]

    def test_records_for_component(self):
        tracker = ProvenanceTracker()
        tracker.record("sql", ProvenanceNodeKind.QUERY, "q")
        tracker.record("nl", ProvenanceNodeKind.MODEL_CALL, "m")
        assert len(tracker.records_for_component("sql")) == 1

    def test_graph_materialisation(self):
        tracker = ProvenanceTracker()
        tracker.record(
            "sql",
            ProvenanceNodeKind.QUERY,
            "run query",
            inputs=["row:t:0"],
            outputs=["answer:0"],
        )
        graph = tracker.build_graph()
        assert "row:t:0" in graph
        assert "answer:0" in graph
        sources = [node.node_id for node in graph.sources_of("answer:0")]
        assert sources == ["row:t:0"]

    def test_kind_inference_from_prefix(self):
        tracker = ProvenanceTracker()
        tracker.record(
            "x", ProvenanceNodeKind.QUERY, "q", inputs=["doc:readme"], outputs=["answer:1"]
        )
        graph = tracker.build_graph()
        assert graph.node("doc:readme").kind is ProvenanceNodeKind.DOCUMENT
        assert graph.node("answer:1").kind is ProvenanceNodeKind.ANSWER

    def test_declared_artefacts_win(self):
        tracker = ProvenanceTracker()
        tracker.declare_artefact("blob:1", ProvenanceNodeKind.DATASET, "my blob")
        tracker.record("x", ProvenanceNodeKind.QUERY, "q", inputs=["blob:1"], outputs=[])
        graph = tracker.build_graph()
        assert graph.node("blob:1").label == "my blob"

    def test_records_producing(self):
        tracker = ProvenanceTracker()
        tracker.record("a", ProvenanceNodeKind.QUERY, "q", outputs=["answer:0"])
        assert len(tracker.records_producing("answer:0")) == 1


class TestExplanations:
    def make(self, employees_db):
        result = employees_db.execute(
            "SELECT department, SUM(salary) AS total FROM employees "
            "WHERE salary IS NOT NULL GROUP BY department ORDER BY department"
        )
        explanation = ExplanationBuilder(employees_db).from_query_result(
            result, question="total salary by department"
        )
        return result, explanation

    def test_lossless_by_construction(self, employees_db):
        result, explanation = self.make(employees_db)
        assert check_losslessness(explanation, result) == []

    def test_invertible_by_construction(self, employees_db):
        result, explanation = self.make(employees_db)
        assert check_invertibility(explanation, employees_db) == []

    def test_tampered_rows_violate_losslessness(self, employees_db):
        result, explanation = self.make(employees_db)
        explanation.rows = [("fake", 0.0)]
        violations = check_losslessness(explanation, result)
        assert any("rows differ" in violation for violation in violations)

    def test_missing_source_violates_losslessness(self, employees_db):
        result, explanation = self.make(employees_db)
        explanation.source_rows = explanation.source_rows[:-1]
        violations = check_losslessness(explanation, result)
        assert any("missing" in violation for violation in violations)

    def test_deleted_row_breaks_invertibility(self, employees_db):
        result, explanation = self.make(employees_db)
        employees_db.catalog.table("employees").delete_row(0)
        violations = check_invertibility(explanation, employees_db)
        assert violations  # row gone and replay differs

    def test_require_helpers_raise(self, employees_db):
        result, explanation = self.make(employees_db)
        require_lossless(explanation, result)  # should not raise
        require_invertible(explanation, employees_db)
        explanation.rows = []
        with pytest.raises(LosslessnessViolation):
            require_lossless(explanation, result)
        with pytest.raises(InvertibilityViolation):
            require_invertible(explanation, employees_db)

    def test_text_rendering_cites_sources(self, employees_db):
        _result, explanation = self.make(employees_db)
        text = explanation.to_text()
        assert "employees" in text
        assert "SELECT" in text

    def test_code_snippet_contains_sql(self, employees_db):
        _result, explanation = self.make(employees_db)
        assert "db.execute" in explanation.code_snippet

    def test_explain_difference(self):
        summary = explain_difference([(1,), (2,)], [(1,), (3,)])
        assert "missing" in summary
        assert "unexpected" in summary

    def test_explain_difference_order_only(self):
        assert "order" in explain_difference([(1,), (2,)], [(2,), (1,)])

    def test_merge_explanations(self, employees_db):
        _result, first = self.make(employees_db)
        result2 = employees_db.execute("SELECT COUNT(*) FROM departments")
        second = ExplanationBuilder(employees_db).from_query_result(result2)
        merged = merge_explanations([first, second])
        assert set(merged.source_tables) == {"employees", "departments"}

    def test_merge_zero_raises(self):
        with pytest.raises(ProvenanceError):
            merge_explanations([])

    def test_source_row_id_helper(self):
        assert source_row_id("t", 3) == "row:t:3"
