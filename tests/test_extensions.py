"""Tests for the extension features: bias auditing, reward decoding,
query caching, active clarification, data rotting."""

import numpy as np
import pytest

from repro.analytics import BiasAuditor, SentimentLexicon, keyness
from repro.datasets import RotDetector, build_swiss_labour_registry
from repro.errors import CDAError, GuidanceError, SoundnessError
from repro.guidance import ActiveClarificationSelector, entropy
from repro.nl import SimulatedLLM
from repro.nl.llmsim import LLMOutput
from repro.soundness import (
    RewardAugmentedDecoder,
    RewardModel,
    candidate_features,
)
from repro.soundness.reward import N_FEATURES
from repro.sqldb import Database


# ---------------------------------------------------------------------------
# Bias analysis (CADS + sentiment)
# ---------------------------------------------------------------------------


class TestSentimentLexicon:
    def test_positive_and_negative(self):
        lexicon = SentimentLexicon()
        assert lexicon.score("the results are excellent and reliable") > 0
        assert lexicon.score("a terrible and unreliable failure") < 0

    def test_negation_flips(self):
        lexicon = SentimentLexicon()
        positive = lexicon.score("the data is reliable")
        negated = lexicon.score("the data is not reliable")
        assert positive > 0
        assert negated < 0

    def test_neutral_text_scores_zero(self):
        assert SentimentLexicon().score("the table has twelve rows") == 0.0

    def test_custom_terms(self):
        lexicon = SentimentLexicon()
        lexicon.add("overheated", -0.5)
        assert lexicon.score("the market is overheated") < 0

    def test_valence_bounds(self):
        with pytest.raises(CDAError):
            SentimentLexicon().add("x", 2.0)


class TestKeyness:
    def test_characteristic_terms_surface(self):
        corpus_a = ["alpha beta beta beta market", "beta growth market"] * 3
        corpus_b = ["gamma delta decline market", "gamma market"] * 3
        results = keyness(corpus_a, corpus_b)
        by_term = {result.term: result.z_score for result in results}
        assert by_term["beta"] > 0
        assert by_term["gamma"] < 0

    def test_shared_terms_near_zero(self):
        corpus_a = ["market data market"] * 4
        corpus_b = ["market data market"] * 4
        results = keyness(corpus_a, corpus_b)
        for result in results:
            assert abs(result.z_score) < 1.0

    def test_empty_corpus_rejected(self):
        with pytest.raises(CDAError):
            keyness([], ["x"])

    def test_min_count_filters_rares(self):
        results = keyness(["unique word here"], ["other text body"], min_count=2)
        assert all(result.count_a + result.count_b >= 2 for result in results)


class TestBiasAuditor:
    def make_log(self):
        # Turns about 'north' are systematically negative, 'south' positive.
        return (
            ["the north region shows a terrible decline and failure"] * 4
            + ["north results are poor and unreliable again"] * 2
            + ["the south region shows excellent growth and success"] * 4
            + ["south results are strong and reliable"] * 2
            + ["overall numbers for the quarter"] * 2
        )

    def test_disparity_flagged(self):
        auditor = BiasAuditor(group_terms=["north", "south"])
        findings = auditor.audit(self.make_log())
        assert findings
        assert findings[0].group_low == "north"
        assert findings[0].group_high == "south"
        assert "human review" in findings[0].describe()

    def test_balanced_log_is_clean(self):
        auditor = BiasAuditor(group_terms=["north", "south"])
        balanced = (
            ["north shows excellent growth"] * 4
            + ["south shows excellent growth"] * 4
        )
        assert auditor.audit(balanced) == []

    def test_small_groups_not_flagged(self):
        auditor = BiasAuditor(group_terms=["north", "south"], min_turns_per_group=5)
        short = ["north is terrible"] * 2 + ["south is excellent"] * 2
        assert auditor.audit(short) == []

    def test_group_reports_expose_vocabulary(self):
        auditor = BiasAuditor(group_terms=["north", "south"])
        reports = {r.group: r for r in auditor.group_reports(self.make_log())}
        assert reports["north"].mean_sentiment < reports["south"].mean_sentiment

    def test_needs_groups(self):
        with pytest.raises(CDAError):
            BiasAuditor(group_terms=[])


# ---------------------------------------------------------------------------
# Reward-augmented decoding
# ---------------------------------------------------------------------------


@pytest.fixture
def reward_setup(employees_db):
    gold = "SELECT AVG(salary) AS avg_salary FROM employees WHERE city = 'zurich'"
    llm = SimulatedLLM(employees_db.catalog, error_rate=0.5, seed=17)
    features, labels = [], []
    for index in range(60):
        question = f"average salary in zurich variant {index}"
        for output in llm.generate_sql(question, gold, n_samples=3):
            features.append(candidate_features(output.sql, question, employees_db))
            labels.append(1.0 if output.is_faithful else 0.0)
    model = RewardModel().fit(np.array(features), np.array(labels))
    return employees_db, llm, model, gold


class TestRewardModel:
    def test_features_shape_and_parse_gate(self, employees_db):
        good = candidate_features(
            "SELECT COUNT(*) FROM employees", "how many employees", employees_db
        )
        broken = candidate_features("SELCT nope", "how many", employees_db)
        assert good.shape == (N_FEATURES,)
        assert good[1] == 1.0 and good[3] == 1.0
        assert broken[1] == 0.0 and broken[3] == 0.0

    def test_identifier_overlap_feature(self, employees_db):
        aligned = candidate_features(
            "SELECT salary FROM employees", "what is the salary", employees_db
        )
        unaligned = candidate_features(
            "SELECT floor FROM departments", "what is the salary", employees_db
        )
        assert aligned[5] > unaligned[5]

    def test_trained_model_prefers_faithful(self, reward_setup):
        employees_db, llm, model, gold = reward_setup
        rewards_faithful, rewards_wrong = [], []
        for index in range(40):
            question = f"average salary in zurich heldout {index}"
            for output in llm.generate_sql(question, gold, n_samples=3):
                reward = model.reward(
                    candidate_features(output.sql, question, employees_db)
                )
                (rewards_faithful if output.is_faithful else rewards_wrong).append(
                    reward
                )
        assert np.mean(rewards_faithful) > np.mean(rewards_wrong)

    def test_fit_validation(self):
        with pytest.raises(SoundnessError):
            RewardModel().fit(np.zeros((2, N_FEATURES)), np.zeros(2))
        with pytest.raises(SoundnessError):
            RewardModel().fit(np.zeros((5, 3)), np.zeros(5))

    def test_untrained_reward_raises(self):
        with pytest.raises(SoundnessError):
            RewardModel().reward(np.zeros(N_FEATURES))


class TestRewardAugmentedDecoder:
    def test_decode_picks_high_reward(self, reward_setup):
        employees_db, _llm, model, gold = reward_setup
        decoder = RewardAugmentedDecoder(model, employees_db)
        candidates = [
            LLMOutput(sql="SELCT broken", self_confidence=0.9, is_faithful=False),
            LLMOutput(sql=gold, self_confidence=0.5, is_faithful=True),
        ]
        chosen = decoder.decode("average salary in zurich", candidates)
        assert chosen.output.sql == gold

    def test_reward_weighted_consistency(self, reward_setup):
        employees_db, llm, model, gold = reward_setup
        decoder = RewardAugmentedDecoder(model, employees_db)
        outputs = llm.generate_sql("some fresh question", gold, n_samples=5)
        chosen, confidence = decoder.decode_with_consistency(
            "some fresh question about salary", outputs
        )
        assert 0.0 <= confidence <= 1.0
        assert chosen.output.sql

    def test_untrained_model_rejected(self, employees_db):
        with pytest.raises(SoundnessError):
            RewardAugmentedDecoder(RewardModel(), employees_db)

    def test_empty_candidates_rejected(self, reward_setup):
        employees_db, _llm, model, _gold = reward_setup
        decoder = RewardAugmentedDecoder(model, employees_db)
        with pytest.raises(SoundnessError):
            decoder.rank("q", [])


# ---------------------------------------------------------------------------
# Query cache
# ---------------------------------------------------------------------------


class TestQueryCache:
    def make_db(self):
        db = Database(cache_size=8)
        db.execute("CREATE TABLE t (x INT, g TEXT)")
        db.execute("INSERT INTO t VALUES (1,'a'),(2,'a'),(3,'b')")
        return db

    def test_repeat_query_hits(self):
        db = self.make_db()
        first = db.execute("SELECT SUM(x) FROM t")
        second = db.execute("SELECT SUM(x) FROM t")
        assert second.rows == first.rows
        assert db.cache.stats.hits == 1

    def test_mutation_invalidates(self):
        db = self.make_db()
        assert db.execute("SELECT SUM(x) FROM t").scalar() == 6
        db.execute("INSERT INTO t VALUES (10, 'c')")
        assert db.execute("SELECT SUM(x) FROM t").scalar() == 16
        assert db.cache.stats.invalidations == 1

    def test_delete_invalidates(self):
        db = self.make_db()
        db.execute("SELECT COUNT(*) FROM t")
        db.catalog.table("t").delete_row(0)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_join_queries_track_both_tables(self):
        db = Database(cache_size=8)
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES (1)")
        sql = "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x"
        assert db.execute(sql).scalar() == 1
        db.execute("INSERT INTO b VALUES (1)")
        assert db.execute(sql).scalar() == 2  # b's version changed

    def test_lru_eviction(self):
        db = Database(cache_size=2)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT x FROM t")
        db.execute("SELECT x + 1 FROM t")
        db.execute("SELECT x + 2 FROM t")  # evicts the first entry
        assert len(db.cache) == 2

    def test_cache_disabled_by_default(self):
        db = Database()
        assert db.cache is None

    def test_different_sql_different_entries(self):
        db = self.make_db()
        db.execute("SELECT SUM(x) FROM t")
        db.execute("SELECT COUNT(*) FROM t")
        assert db.cache.stats.hits == 0
        assert len(db.cache) == 2


# ---------------------------------------------------------------------------
# Active clarification selection
# ---------------------------------------------------------------------------


class TestActiveClarification:
    def test_entropy_basics(self):
        assert entropy([0.5, 0.5]) == pytest.approx(1.0)
        assert entropy([1.0]) == 0.0
        with pytest.raises(GuidanceError):
            entropy([0.0, 0.0])

    def test_confident_belief_answers(self):
        selector = ActiveClarificationSelector()
        plan = selector.plan({"employment": 0.95, "cantons": 0.05})
        assert plan.action == "answer"

    def test_tied_belief_asks_two_options(self):
        selector = ActiveClarificationSelector()
        plan = selector.plan({"employment": 0.5, "cantons": 0.5})
        assert plan.action == "ask"
        assert set(plan.options) == {"employment", "cantons"}
        assert plan.information_gain == pytest.approx(1.0)

    def test_long_tail_not_fully_enumerated(self):
        selector = ActiveClarificationSelector(max_options=3)
        scores = {f"table_{i}": 1.0 for i in range(10)}
        plan = selector.plan(scores)
        if plan.action == "ask":
            assert len(plan.options) <= 3

    def test_three_way_tie_offers_three(self):
        selector = ActiveClarificationSelector()
        plan = selector.plan({"a": 1.0, "b": 1.0, "c": 1.0})
        assert plan.action == "ask"
        assert len(plan.options) == 3

    def test_negative_scores_rejected(self):
        with pytest.raises(GuidanceError):
            ActiveClarificationSelector().plan({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(GuidanceError):
            ActiveClarificationSelector().plan({})


# ---------------------------------------------------------------------------
# Data rotting
# ---------------------------------------------------------------------------


class TestRotDetector:
    def test_fresh_sources_pass(self):
        detector = RotDetector()
        verdict = detector.assess("barometer", "monthly", age_days=15)
        assert not verdict.rotten

    def test_overdue_sources_rot(self):
        detector = RotDetector()
        verdict = detector.assess("barometer", "monthly", age_days=90)
        assert verdict.rotten
        assert "ROTTEN" in verdict.describe()

    def test_no_cadence_not_assessed(self):
        verdict = RotDetector().assess("doc", "", age_days=9999)
        assert not verdict.rotten
        assert verdict.max_age_days is None

    def test_scan_quarantines_and_restores(self):
        domain = build_swiss_labour_registry(seed=2)
        detector = RotDetector()
        report = detector.scan(domain.registry, {"barometer": 365.0})
        assert any(v.name == "barometer" and v.rotten for v in report.rotten)
        assert domain.registry.info("barometer").stale
        # A refreshed source is automatically restored on the next scan.
        detector.scan(domain.registry, {"barometer": 5.0})
        assert not domain.registry.info("barometer").stale

    def test_rotten_sources_hidden_from_discovery_only(self):
        domain = build_swiss_labour_registry(seed=2)
        RotDetector().scan(domain.registry, {"barometer": 365.0})
        names = {info.name for info in domain.registry.sources()}
        assert "barometer" not in names
        # ... but provenance replay still works: the table is queryable.
        result = domain.registry.database.execute("SELECT COUNT(*) FROM barometer")
        assert result.scalar() == 120

    def test_negative_age_rejected(self):
        with pytest.raises(CDAError):
            RotDetector().assess("x", "daily", age_days=-1)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(CDAError):
            RotDetector(tolerances={"daily": 0.0})


class TestEngineCacheIntegration:
    def test_engine_attaches_cache_by_default(self):
        domain = build_swiss_labour_registry(seed=3)
        from repro.core import CDAEngine

        engine = CDAEngine(domain.registry, domain.vocabulary)
        engine.ask("how many cantons are there")
        engine.ask("how many cantons are there")
        assert engine.database.cache is not None
        assert engine.database.cache.stats.hits >= 1

    def test_cache_can_be_disabled(self):
        domain = build_swiss_labour_registry(seed=3)
        from repro.core import CDAEngine, ReliabilityConfig

        config = ReliabilityConfig(query_cache_size=None)
        engine = CDAEngine(domain.registry, domain.vocabulary, config=config)
        assert engine.database.cache is None

    def test_tampering_still_caught_through_cache(self):
        domain = build_swiss_labour_registry(seed=3)
        from repro.core import CDAEngine
        from repro.soundness import AnswerVerifier

        engine = CDAEngine(domain.registry, domain.vocabulary)
        result = engine.database.execute("SELECT COUNT(*) FROM cantons")
        engine.database.execute("SELECT COUNT(*) FROM cantons")  # prime cache
        result.rows = [(999,)]
        report = AnswerVerifier(engine.database).verify(result, depth="reexecution")
        assert not report.passed
