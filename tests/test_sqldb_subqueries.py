"""Tests for subqueries and UNION in the SQL engine."""

import pytest

from repro.errors import ExecutionError
from repro.nl import SQLValidator
from repro.sqldb import Database
from repro.sqldb.parser import parse_sql


@pytest.fixture
def db():
    database = Database(capture_how=True)
    database.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept TEXT, salary FLOAT)")
    database.execute(
        "INSERT INTO emp VALUES (1,'eng',100.0),(2,'eng',90.0),"
        "(3,'hr',80.0),(4,'hr',60.0)"
    )
    database.execute("CREATE TABLE dept (dept TEXT PRIMARY KEY, floor INT)")
    database.execute("INSERT INTO dept VALUES ('eng',3),('hr',2)")
    return database


class TestScalarSubquery:
    def test_in_where(self, db):
        rows = db.execute(
            "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) "
            "ORDER BY id"
        ).rows
        assert rows == [(1,), (2,)]

    def test_in_select_list(self, db):
        rows = db.execute(
            "SELECT id, salary - (SELECT MIN(salary) FROM emp) AS above_min "
            "FROM emp ORDER BY id"
        ).rows
        assert rows[0] == (1, 40.0)

    def test_empty_result_is_null(self, db):
        rows = db.execute(
            "SELECT id FROM emp WHERE salary > (SELECT salary FROM emp WHERE id = 99)"
        ).rows
        assert rows == []  # NULL comparison keeps nothing

    def test_multi_row_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT (SELECT salary FROM emp) FROM dept")

    def test_multi_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT (SELECT id, salary FROM emp WHERE id = 1) FROM dept")

    def test_usable_in_grouped_query(self, db):
        rows = db.execute(
            "SELECT dept, COUNT(*) FROM emp "
            "WHERE salary >= (SELECT AVG(salary) FROM emp) "
            "GROUP BY dept ORDER BY dept"
        ).rows
        assert rows == [("eng", 2)]


class TestInSubquery:
    def test_membership(self, db):
        rows = db.execute(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM dept WHERE floor > 2) ORDER BY id"
        ).rows
        assert rows == [(1,), (2,)]

    def test_not_in(self, db):
        rows = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN "
            "(SELECT dept FROM dept WHERE floor > 2) ORDER BY id"
        ).rows
        assert rows == [(3,), (4,)]

    def test_null_in_subquery_gives_unknown(self, db):
        db.execute("CREATE TABLE n (v TEXT)")
        db.execute("INSERT INTO n VALUES ('eng'), (NULL)")
        rows = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN (SELECT v FROM n)"
        ).rows
        assert rows == []  # NULL in the list makes NOT IN unknown

    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute(
                "SELECT id FROM emp WHERE dept IN (SELECT dept, floor FROM dept)"
            )

    def test_round_trip(self, db):
        sql = (
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM dept WHERE (floor > 2))"
        )
        once = parse_sql(sql).to_sql()
        assert parse_sql(once).to_sql() == once


class TestUnion:
    def test_union_dedupes(self, db):
        rows = db.execute("SELECT dept FROM emp UNION SELECT dept FROM dept").rows
        assert sorted(rows) == [("eng",), ("hr",)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.execute(
            "SELECT dept FROM emp UNION ALL SELECT dept FROM dept"
        ).rows
        assert len(rows) == 6

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT id, dept FROM emp UNION SELECT dept FROM dept")

    def test_union_merges_lineage(self, db):
        result = db.execute(
            "SELECT dept FROM emp WHERE id = 1 "
            "UNION SELECT dept FROM dept WHERE floor = 3"
        )
        assert result.rows == [("eng",)]
        assert result.lineage[0] == frozenset({("emp", 0), ("dept", 0)})
        assert str(result.how[0]) == "dept:0 + emp:0"

    def test_three_way_union(self, db):
        rows = db.execute(
            "SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3"
        ).rows
        assert rows == [(1,), (2,), (3,)]

    def test_union_round_trip(self, db):
        sql = "SELECT id FROM emp UNION ALL SELECT floor FROM dept"
        once = parse_sql(sql).to_sql()
        assert parse_sql(once).to_sql() == once


class TestValidatorWithSubqueries:
    def test_valid_subquery_passes(self, db):
        validator = SQLValidator(db.catalog)
        report = validator.validate(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM dept)"
        )
        assert report.valid

    def test_invalid_inner_column_caught(self, db):
        validator = SQLValidator(db.catalog)
        report = validator.validate(
            "SELECT id FROM emp WHERE dept IN (SELECT bogus FROM dept)"
        )
        assert not report.valid

    def test_invalid_inner_table_caught(self, db):
        validator = SQLValidator(db.catalog)
        report = validator.validate(
            "SELECT id FROM emp WHERE salary > (SELECT AVG(x) FROM nope)"
        )
        assert not report.valid

    def test_union_arms_validated(self, db):
        validator = SQLValidator(db.catalog)
        assert validator.validate(
            "SELECT id FROM emp UNION ALL SELECT floor FROM dept"
        ).valid
        assert not validator.validate(
            "SELECT id FROM emp UNION ALL SELECT bogus FROM dept"
        ).valid

    def test_union_arity_checked(self, db):
        validator = SQLValidator(db.catalog)
        report = validator.validate(
            "SELECT id, dept FROM emp UNION SELECT dept FROM dept"
        )
        assert not report.valid
