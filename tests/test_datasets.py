"""Tests for the synthetic data domains: planted structure must be real."""

import numpy as np
import pytest

from repro.analytics import detect_seasonality, pearson_correlation
from repro.datasets import (
    build_ecommerce_registry,
    build_healthcare_registry,
    build_swiss_labour_registry,
)


class TestSwissLabour:
    def test_determinism(self):
        a = build_swiss_labour_registry(seed=3)
        b = build_swiss_labour_registry(seed=3)
        series_a = a.registry.database.catalog.table("barometer").column_values("barometer")
        series_b = b.registry.database.catalog.table("barometer").column_values("barometer")
        assert series_a == series_b

    def test_seed_changes_data(self):
        a = build_swiss_labour_registry(seed=1)
        b = build_swiss_labour_registry(seed=2)
        series_a = a.registry.database.catalog.table("barometer").column_values("barometer")
        series_b = b.registry.database.catalog.table("barometer").column_values("barometer")
        assert series_a != series_b

    def test_planted_period_detectable(self, swiss_domain):
        series = swiss_domain.registry.database.catalog.table(
            "barometer"
        ).column_values("barometer")
        result = detect_seasonality(series)
        assert result.period == swiss_domain.ground_truth.barometer_period

    def test_barometer_has_trend(self, swiss_domain):
        series = swiss_domain.registry.database.catalog.table(
            "barometer"
        ).column_values("barometer")
        months = list(range(len(series)))
        slope = np.polyfit(months, series, 1)[0]
        assert slope == pytest.approx(
            swiss_domain.ground_truth.barometer_trend_slope, abs=0.02
        )

    def test_employment_fk_joins(self, swiss_domain):
        db = swiss_domain.registry.database
        result = db.execute(
            "SELECT COUNT(*) FROM employment e "
            "JOIN cantons c ON e.canton = c.canton"
        )
        assert result.scalar() == len(db.catalog.table("employment"))

    def test_largest_sector_planted(self, swiss_domain):
        db = swiss_domain.registry.database
        result = db.execute(
            "SELECT sector, SUM(employees) AS total FROM employment "
            "GROUP BY sector ORDER BY total DESC LIMIT 1"
        )
        assert result.rows[0][0] == swiss_domain.ground_truth.largest_sector

    def test_vocabulary_covers_figure1_phrases(self, swiss_domain):
        hit = swiss_domain.vocabulary.lookup("working force")
        assert hit is not None
        assert hit.term.schema_bindings == ["table:employment"]

    def test_documents_registered(self, swiss_domain):
        assert "barometer_methodology" in swiss_domain.registry.documents


class TestEcommerce:
    def test_top_revenue_category_planted(self, ecommerce_domain):
        db = ecommerce_domain.registry.database
        result = db.execute(
            "SELECT p.category, SUM(o.amount) AS revenue FROM orders o "
            "JOIN products p ON o.product_id = p.product_id "
            "GROUP BY p.category ORDER BY revenue DESC LIMIT 1"
        )
        assert result.rows[0][0] == ecommerce_domain.ground_truth.top_revenue_category

    def test_weekly_seasonality_in_order_volume(self, ecommerce_domain):
        db = ecommerce_domain.registry.database
        result = db.execute(
            "SELECT day_index, COUNT(*) AS n FROM orders "
            "GROUP BY day_index ORDER BY day_index"
        )
        counts = dict(result.rows)
        n_days = ecommerce_domain.ground_truth.n_days
        series = [counts.get(day, 0) for day in range(n_days)]
        detected = detect_seasonality(series)
        assert detected.period == ecommerce_domain.ground_truth.weekly_period

    def test_order_amounts_match_prices(self, ecommerce_domain):
        db = ecommerce_domain.registry.database
        result = db.execute(
            "SELECT o.amount, o.quantity, p.price FROM orders o "
            "JOIN products p ON o.product_id = p.product_id LIMIT 20"
        )
        for amount, quantity, price in result.rows:
            assert amount == pytest.approx(round(price * quantity, 2))

    def test_fk_integrity(self, ecommerce_domain):
        db = ecommerce_domain.registry.database
        orphans = db.execute(
            "SELECT COUNT(*) FROM orders o "
            "LEFT JOIN customers c ON o.customer_id = c.customer_id "
            "WHERE c.customer_id IS NULL"
        )
        assert orphans.scalar() == 0


class TestHealthcare:
    def test_costliest_ward_planted(self, healthcare_domain):
        db = healthcare_domain.registry.database
        result = db.execute(
            "SELECT ward, AVG(cost) AS avg_cost FROM visits "
            "GROUP BY ward ORDER BY avg_cost DESC LIMIT 1"
        )
        assert result.rows[0][0] == healthcare_domain.ground_truth.costliest_ward

    def test_yearly_visit_seasonality(self, healthcare_domain):
        db = healthcare_domain.registry.database
        result = db.execute(
            "SELECT month_index, COUNT(*) AS n FROM visits "
            "GROUP BY month_index ORDER BY month_index"
        )
        counts = dict(result.rows)
        series = [counts.get(month, 0) for month in range(48)]
        detected = detect_seasonality(series)
        assert detected.period == healthcare_domain.ground_truth.visit_seasonal_period

    def test_bp_age_correlation_planted(self, healthcare_domain):
        db = healthcare_domain.registry.database
        result = db.execute("SELECT age, systolic_bp FROM patients")
        ages = [row[0] for row in result.rows]
        pressures = [row[1] for row in result.rows]
        correlation = pearson_correlation(ages, pressures)
        assert correlation.coefficient > 0.5
        assert correlation.significant

    def test_visit_patient_fk(self, healthcare_domain):
        db = healthcare_domain.registry.database
        orphans = db.execute(
            "SELECT COUNT(*) FROM visits v "
            "LEFT JOIN patients p ON v.patient_id = p.patient_id "
            "WHERE p.patient_id IS NULL"
        )
        assert orphans.scalar() == 0
