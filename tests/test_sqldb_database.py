"""Tests for the Database facade, tables, catalog, and ingestion."""

import pytest

from repro.errors import CatalogError, ExecutionError, IntegrityError
from repro.sqldb import Column, ColumnType, Database, Schema, Table
from repro.sqldb.types import coerce_value, infer_column_type


class TestTable:
    def make_table(self):
        return Table(
            name="t",
            schema=Schema(
                columns=[
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("name", ColumnType.TEXT),
                ]
            ),
        )

    def test_insert_and_fetch(self):
        table = self.make_table()
        row_id = table.insert([1, "a"])
        assert table.get_row(row_id) == (1, "a")

    def test_row_ids_are_stable_across_deletes(self):
        table = self.make_table()
        first = table.insert([1, "a"])
        second = table.insert([2, "b"])
        table.delete_row(first)
        third = table.insert([3, "c"])
        assert second == 1
        assert third == 2  # never reuses id 0
        assert table.get_row(second) == (2, "b")

    def test_not_null_enforced(self):
        table = self.make_table()
        with pytest.raises(IntegrityError):
            table.insert([None, "a"])

    def test_wrong_arity(self):
        table = self.make_table()
        with pytest.raises(IntegrityError):
            table.insert([1])

    def test_primary_key_uniqueness(self):
        table = self.make_table()
        table.set_primary_key("id")
        table.insert([1, "a"])
        with pytest.raises(IntegrityError):
            table.insert([1, "b"])

    def test_primary_key_freed_on_delete(self):
        table = self.make_table()
        table.set_primary_key("id")
        row_id = table.insert([1, "a"])
        table.delete_row(row_id)
        table.insert([1, "b"])  # must not raise

    def test_primary_key_only_on_empty_table(self):
        table = self.make_table()
        table.insert([1, "a"])
        with pytest.raises(CatalogError):
            table.set_primary_key("id")

    def test_insert_dict_missing_column_is_null(self):
        table = self.make_table()
        row_id = table.insert_dict({"id": 1})
        assert table.get_row(row_id) == (1, None)

    def test_insert_dict_unknown_column(self):
        table = self.make_table()
        with pytest.raises(CatalogError):
            table.insert_dict({"id": 1, "bogus": 2})

    def test_from_records_infers_schema(self):
        table = Table.from_records(
            "t", [{"a": 1, "b": "x"}, {"a": 2, "b": None}]
        )
        assert table.schema.column("a").type is ColumnType.INTEGER
        assert table.schema.column("b").type is ColumnType.TEXT
        assert len(table) == 2

    def test_column_values(self):
        table = self.make_table()
        table.insert([1, "a"])
        table.insert([2, "b"])
        assert table.column_values("name") == ["a", "b"]


class TestTypes:
    def test_coerce_int_from_float(self):
        assert coerce_value(3.0, ColumnType.INTEGER) == 3

    def test_coerce_rejects_lossy(self):
        with pytest.raises(ExecutionError):
            coerce_value(3.5, ColumnType.INTEGER)

    def test_coerce_bool_not_numeric(self):
        with pytest.raises(ExecutionError):
            coerce_value(True, ColumnType.INTEGER)

    def test_coerce_date_validates(self):
        assert coerce_value("2024-01-01", ColumnType.DATE) == "2024-01-01"
        with pytest.raises(ExecutionError):
            coerce_value("01/01/2024", ColumnType.DATE)

    def test_null_passes_any_type(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None

    def test_type_aliases(self):
        assert ColumnType.from_name("varchar") is ColumnType.TEXT
        assert ColumnType.from_name("BIGINT") is ColumnType.INTEGER
        with pytest.raises(CatalogError):
            ColumnType.from_name("BLOB")

    def test_infer_types(self):
        assert infer_column_type([1, 2, None]) is ColumnType.INTEGER
        assert infer_column_type([1, 2.5]) is ColumnType.FLOAT
        assert infer_column_type([True, False]) is ColumnType.BOOLEAN
        assert infer_column_type(["2024-01-01"]) is ColumnType.DATE
        assert infer_column_type(["a"]) is ColumnType.TEXT
        assert infer_column_type([None]) is ColumnType.TEXT

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Schema(columns=[Column("a", ColumnType.TEXT), Column("A", ColumnType.TEXT)])


class TestCatalog:
    def test_foreign_key_validation(self, employees_db):
        with pytest.raises(CatalogError):
            employees_db.catalog.add_foreign_key(
                "employees", "bogus", "departments", "department"
            )

    def test_join_path(self, employees_db):
        fk = employees_db.catalog.join_path("departments", "employees")
        assert fk is not None
        assert fk.column == "department"

    def test_drop_table_removes_fks(self, employees_db):
        employees_db.catalog.drop_table("departments")
        assert "departments" not in employees_db.catalog
        assert employees_db.catalog.foreign_keys == []

    def test_describe_structure(self, employees_db):
        description = employees_db.catalog.describe()
        names = {table["name"] for table in description["tables"]}
        assert names == {"employees", "departments"}
        assert description["foreign_keys"][0]["table"] == "employees"

    def test_duplicate_table_rejected(self, employees_db):
        with pytest.raises(CatalogError):
            employees_db.execute("CREATE TABLE employees (x INT)")


class TestDatabaseFacade:
    def test_create_insert_select_cycle(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        inserted = db.execute("INSERT INTO t VALUES (1, 2.5), (2, 3.5)")
        assert inserted.rows == [(2,)]
        assert db.execute("SELECT SUM(v) FROM t").scalar() == 6.0

    def test_insert_with_columns_reordered(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert db.execute("SELECT a, b FROM t").rows == [(1, "x")]

    def test_load_records(self):
        db = Database()
        db.load_records("t", [{"x": 1}, {"x": 2}])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_load_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n1,x,true\n2,y,false\n3,,true\n")
        db = Database()
        db.load_csv("t", path)
        result = db.execute("SELECT a, b, c FROM t ORDER BY a")
        assert result.rows == [(1, "x", True), (2, "y", False), (3, None, True)]

    def test_query_result_helpers(self, employees_db):
        result = employees_db.execute(
            "SELECT name, salary FROM employees WHERE id <= 2 ORDER BY id"
        )
        assert result.column("name") == ["ann", "bob"]
        assert result.to_records()[0] == {"name": "ann", "salary": 100.0}
        assert not result.is_empty
        with pytest.raises(ExecutionError):
            result.scalar()

    def test_stats_accumulate(self, employees_db):
        before = employees_db.stats.queries_executed
        employees_db.execute("SELECT 1")
        assert employees_db.stats.queries_executed == before + 1

    def test_fetch_source_row(self, employees_db):
        record = employees_db.fetch_source_row("employees", 0)
        assert record["name"] == "ann"

    def test_fetch_source_row_missing(self, employees_db):
        with pytest.raises(CatalogError):
            employees_db.fetch_source_row("employees", 999)
