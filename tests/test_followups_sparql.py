"""Tests for conversational follow-ups, SPARQL-lite, and where-to analysis."""

import pytest

from repro.core import AnswerKind, CDAEngine
from repro.datasets import build_swiss_labour_registry
from repro.errors import KGError
from repro.kg import SchemaKnowledgeGraph
from repro.kg.sparql import parse_sparql, sparql_select
from repro.kg.triple_store import TripleStore


@pytest.fixture
def engine():
    domain = build_swiss_labour_registry(seed=5)
    return CDAEngine(domain.registry, domain.vocabulary)


class TestFollowUps:
    def test_and_for_refines_filter(self, engine):
        first = engine.ask("what is the total employees in zurich")
        followup = engine.ask("and for bern?")
        assert followup.kind is AnswerKind.DATA
        assert "bern" in followup.sql
        assert followup.rows != first.rows

    def test_what_about_refines_filter(self, engine):
        engine.ask("what is the total employees in zurich")
        followup = engine.ask("what about geneva")
        assert followup.kind is AnswerKind.DATA
        assert "geneva" in followup.sql

    def test_followup_keeps_aggregate_shape(self, engine):
        engine.ask("how many employment records in zurich")
        followup = engine.ask("and for ticino?")
        assert followup.kind is AnswerKind.DATA
        assert "COUNT(*)" in followup.sql

    def test_followup_value_from_other_column(self, engine):
        engine.ask("what is the total employees in zurich")
        followup = engine.ask("and for services?")  # sector, not canton
        assert followup.kind is AnswerKind.DATA
        assert "services" in followup.sql
        # The canton filter was replaced only if same column; sector adds.
        assert "zurich" in followup.sql

    def test_no_previous_intent_routes_normally(self, engine):
        answer = engine.ask("and for bern?")
        assert answer.kind is not AnswerKind.DATA or answer.rows is not None

    def test_unknown_value_falls_through(self, engine):
        engine.ask("what is the total employees in zurich")
        answer = engine.ask("and for atlantis?")
        assert answer.kind in (AnswerKind.ABSTENTION, AnswerKind.ERROR,
                               AnswerKind.CLARIFICATION, AnswerKind.DISCOVERY)

    def test_full_question_not_treated_as_followup(self, engine):
        engine.ask("what is the total employees in zurich")
        answer = engine.ask("how many cantons are there")
        assert answer.rows == [(8,)]

    def test_followup_answer_is_annotated(self, engine):
        engine.ask("what is the total employees in zurich")
        followup = engine.ask("and for bern?")
        assert followup.confidence is not None
        assert followup.explanation is not None
        assert any("follow-up" in n for n in followup.explanation.grounding_notes)


class TestSparql:
    @pytest.fixture
    def store(self, employees_db):
        return SchemaKnowledgeGraph(employees_db.catalog).store

    def test_single_pattern(self, store):
        rows = sparql_select(
            store,
            'SELECT ?c WHERE { ?c cda:columnOf table:employees . }',
        )
        assert ("column:employees.salary",) in rows
        assert len(rows) == 5

    def test_join_patterns(self, store):
        rows = sparql_select(
            store,
            'SELECT ?c WHERE { ?c cda:columnOf table:employees . '
            '?c cda:datatype "FLOAT" . }',
        )
        assert rows == [("column:employees.salary",)]

    def test_distinct_and_limit(self, store):
        rows = sparql_select(
            store,
            "SELECT DISTINCT ?t WHERE { ?c cda:columnOf ?t . } LIMIT 1",
        )
        assert len(rows) == 1

    def test_star_projection(self, store):
        query = parse_sparql(
            "SELECT * WHERE { ?c cda:columnOf ?t . }"
        )
        assert query.variables == ["c", "t"]

    def test_boolean_literal(self, store):
        rows = sparql_select(
            store,
            "SELECT ?c WHERE { ?c cda:nullable false . }",
        )
        # The two primary-key-ish NOT NULL columns (employees.id is
        # nullable=False via PRIMARY KEY; departments.department too).
        assert rows

    def test_numeric_literal(self):
        store = TripleStore()
        store.add("s", "age", 30)
        rows = sparql_select(store, "SELECT ?x WHERE { ?x age 30 . }")
        assert rows == [("s",)]

    def test_parse_errors(self):
        with pytest.raises(KGError):
            parse_sparql("ASK { ?s ?p ?o }")
        with pytest.raises(KGError):
            parse_sparql("SELECT ?x WHERE { ?x p }")
        with pytest.raises(KGError):
            parse_sparql("SELECT ?x WHERE { ?x p o . } LIMIT abc")
        with pytest.raises(KGError):
            parse_sparql("SELECT WHERE { ?x p o . }")
        with pytest.raises(KGError):
            parse_sparql("SELECT ?x WHERE { ?x p o . ")

    def test_unbound_projection_rejected(self):
        store = TripleStore()
        store.add("s", "p", "o")
        with pytest.raises(KGError):
            sparql_select(store, "SELECT ?zzz WHERE { ?x p o . }")

    def test_trailing_dot_optional(self):
        store = TripleStore()
        store.add("s", "p", "o")
        rows = sparql_select(store, "SELECT ?x WHERE { ?x p o }")
        assert rows == [("s",)]


class TestWhereToAnalysis:
    def test_impact_lists_answers(self, engine):
        engine.ask("how many cantons are there")
        engine.ask("what is the total employees in zurich")
        impacted = engine.impact_of_source("employment")
        assert impacted  # the second answer rests on employment
        assert all(node.startswith("answer:") for node in impacted)

    def test_untouched_source_has_no_impact(self, engine):
        engine.ask("how many cantons are there")
        assert engine.impact_of_source("barometer") == []

    def test_unknown_source_empty(self, engine):
        assert engine.impact_of_source("nonexistent") == []


class TestExpertiseAdaptation:
    def test_expert_gets_terse_answers(self):
        domain = build_swiss_labour_registry(seed=5)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        # Several highly technical turns raise the inferred expertise.
        for _ in range(5):
            engine.session.profiler.observe(
                "decompose the variance and correlation of the regression "
                "with confidence interval and stddev per aggregate query"
            )
        answer = engine.ask("how many cantons are there")
        assert "I am computing" not in answer.text

    def test_novice_gets_interpretation(self):
        domain = build_swiss_labour_registry(seed=5)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        answer = engine.ask("how many cantons are there")
        assert "I am computing" in answer.text
