"""Tests for the CDA engine and the core layer."""

import pytest

from repro.core import (
    Answer,
    AnswerKind,
    CDAEngine,
    ReliabilityConfig,
    Session,
)
from repro.datasets import build_swiss_labour_registry
from repro.guidance.clarification import ClarificationMode
from repro.guidance.conversation_graph import TurnKind
from repro.nl import SimulatedLLM


@pytest.fixture
def engine():
    domain = build_swiss_labour_registry(seed=5)
    return CDAEngine(domain.registry, domain.vocabulary)


class TestIntentRouting:
    def test_discovery_turn(self, engine):
        answer = engine.ask("give me an overview of the available datasets about the working force")
        assert answer.kind is AnswerKind.DISCOVERY
        assert answer.clarification is not None

    def test_metadata_turn(self, engine):
        answer = engine.ask("what is the barometer?")
        assert answer.kind is AnswerKind.METADATA
        assert answer.sources  # the origin URL is cited

    def test_chitchat_turn(self, engine):
        answer = engine.ask("hello")
        assert answer.kind is AnswerKind.CHITCHAT

    def test_data_turn(self, engine):
        answer = engine.ask("how many cantons are there")
        assert answer.kind is AnswerKind.DATA
        assert answer.rows == [(8,)]


class TestFigure1Conversation:
    """The paper's running example, end to end."""

    def test_full_dialogue(self, engine):
        # Turn 1: vague topical request -> dataset suggestions + question.
        first = engine.ask("Give me an overview of the working force in Switzerland")
        assert first.kind is AnswerKind.DISCOVERY
        assert engine.session.expecting_clarification_reply

        # Turn 2: the user picks the barometer -> overview with source.
        second = engine.ask("I am interested in the barometer")
        assert second.kind is AnswerKind.METADATA
        assert any("barometer" in source for source in second.sources)
        assert engine.session.focus_table == "barometer"

        # Turn 3: seasonality insights -> period 6 with confidence + code.
        third = engine.ask("can you give me the seasonality insights, such as overall trend")
        assert third.kind is AnswerKind.ANALYSIS
        assert third.metadata["period"] == 6
        assert third.confidence.value > 0.8
        assert "python" in third.text.lower() or "repro.analytics" in third.text

    def test_suggestions_offered_on_metadata(self, engine):
        engine.ask("give me an overview of the working force")
        answer = engine.ask("the barometer")
        assert any(s.kind == "analysis" for s in answer.suggestions)


class TestDataPath:
    def test_answer_is_annotated(self, engine):
        answer = engine.ask("what is the average employees for each sector")
        assert answer.kind is AnswerKind.DATA
        assert answer.confidence is not None
        assert answer.verification is not None
        assert answer.verification.passed
        assert answer.explanation is not None
        assert answer.sql is not None

    def test_explanation_is_lossless_and_invertible(self, engine):
        from repro.provenance import check_invertibility

        answer = engine.ask("how many cantons are there")
        violations = check_invertibility(answer.explanation, engine.database)
        assert violations == []

    def test_render_includes_confidence(self, engine):
        answer = engine.ask("how many cantons are there")
        assert "Confidence:" in answer.render()

    def test_untranslatable_without_llm_abstains(self, engine):
        answer = engine.ask("please compute the frobnication coefficient")
        assert answer.kind is AnswerKind.ABSTENTION

    def test_focus_table_tracked(self, engine):
        engine.ask("how many employment records are there")
        assert engine.session.focus_table == "employment"


class TestClarificationFlow:
    def test_ambiguous_question_asks(self):
        domain = build_swiss_labour_registry(seed=6)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        # Both employment and cantons contain canton values: force a tie by
        # asking something that mentions only a shared value.
        answer = engine.ask("compare zurich against bern")
        # Whatever the route, the engine must not crash; if it asked, a
        # reply must resolve it.
        if answer.kind is AnswerKind.CLARIFICATION:
            follow_up = engine.ask("employment")
            assert follow_up.kind is not AnswerKind.CLARIFICATION

    def test_discovery_reply_resolves_dataset(self, engine):
        engine.ask("what datasets do you have about the labour market")
        answer = engine.ask("employment")
        assert answer.kind is AnswerKind.METADATA
        assert engine.session.focus_table == "employment"

    def test_unresolvable_reply_reasks(self, engine):
        engine.ask("what datasets do you have about jobs")
        answer = engine.ask("xyzzy plugh")
        assert answer.kind is AnswerKind.CLARIFICATION
        assert engine.session.expecting_clarification_reply


class TestAnalysisPath:
    def test_named_table_analysis(self, engine):
        answer = engine.ask("show me the trend and seasonality of the barometer")
        assert answer.kind is AnswerKind.ANALYSIS
        assert answer.metadata["period"] == 6

    def test_outlier_analysis(self, engine):
        answer = engine.ask("are there outliers in the barometer")
        assert answer.kind is AnswerKind.ANALYSIS
        assert "outlier" in answer.text.lower()

    def test_analysis_without_target_abstains(self, engine):
        answer = engine.ask("show me the seasonality")
        assert answer.kind is AnswerKind.ABSTENTION

    def test_counts_series_for_event_tables(self):
        from repro.datasets import build_healthcare_registry

        domain = build_healthcare_registry(seed=4)
        engine = CDAEngine(domain.registry, domain.vocabulary)
        answer = engine.ask("show me the seasonality of the visits")
        assert answer.kind is AnswerKind.ANALYSIS
        assert answer.metadata["period"] == 12


class TestLLMFallback:
    def make_engine(self, error_rate, config=None):
        domain = build_swiss_labour_registry(seed=8)
        llm = SimulatedLLM(
            domain.registry.database.catalog, error_rate=error_rate, seed=3
        )
        return CDAEngine(
            domain.registry, domain.vocabulary, config=config, llm=llm
        )

    GOLD = "SELECT COUNT(*) AS count_all FROM cantons"

    def test_reliable_llm_answers(self):
        engine = self.make_engine(0.0)
        answer = engine.ask(
            "an utterly untranslatable question", llm_gold_sql=self.GOLD
        )
        assert answer.kind is AnswerKind.DATA
        assert answer.rows == [(8,)]

    def test_llm_only_mode_answers_blindly(self):
        engine = self.make_engine(1.0, config=ReliabilityConfig.llm_only())
        answer = engine.ask("another odd question", llm_gold_sql=self.GOLD)
        # LLM-only never abstains: it answers (possibly wrongly) or errors.
        assert answer.kind in (AnswerKind.DATA, AnswerKind.ERROR, AnswerKind.ABSTENTION)
        if answer.kind is AnswerKind.DATA:
            assert answer.verification is None

    def test_full_cda_abstains_on_unreliable_llm(self):
        engine = self.make_engine(1.0)
        answers = [
            engine.ask(f"weird question {i}", llm_gold_sql=self.GOLD)
            for i in range(5)
        ]
        assert any(a.kind is AnswerKind.ABSTENTION for a in answers)

    def test_consistency_confidence_attached(self):
        engine = self.make_engine(0.0)
        answer = engine.ask("odd question", llm_gold_sql=self.GOLD)
        assert "consistency" in answer.confidence.parts


class TestReliabilityConfig:
    def test_presets_differ(self):
        full = ReliabilityConfig.full()
        llm_only = ReliabilityConfig.llm_only()
        assert full.use_grounded_parser and not llm_only.use_grounded_parser
        assert full.verification_depth != "none"
        assert llm_only.verification_depth == "none"
        assert llm_only.clarification_mode is ClarificationMode.NEVER

    def test_no_explanations_config(self):
        domain = build_swiss_labour_registry(seed=9)
        config = ReliabilityConfig(attach_explanations=False)
        engine = CDAEngine(domain.registry, domain.vocabulary, config=config)
        answer = engine.ask("how many cantons are there")
        assert answer.explanation is None

    def test_no_suggestions_config(self):
        domain = build_swiss_labour_registry(seed=9)
        config = ReliabilityConfig(offer_suggestions=False)
        engine = CDAEngine(domain.registry, domain.vocabulary, config=config)
        answer = engine.ask("how many cantons are there")
        assert answer.suggestions == []


class TestSessionState:
    def test_counters(self, engine):
        engine.ask("how many cantons are there")
        engine.ask("what is the barometer?")
        assert engine.session.questions_asked == 2
        assert engine.session.answers_given == 2

    def test_conversation_graph_records_turns(self, engine):
        engine.ask("how many cantons are there")
        kinds = [t.kind for t in engine.session.graph.turns()]
        assert TurnKind.USER_QUESTION in kinds
        assert TurnKind.SYSTEM_ANSWER in kinds

    def test_provenance_tracker_records_queries(self, engine):
        engine.ask("how many cantons are there")
        assert len(engine.session.tracker) >= 1

    def test_session_dataclass_defaults(self):
        session = Session()
        assert not session.expecting_clarification_reply
        assert session.focus_table is None
