"""Tests for the logical planner: pushdown, equi-keys, and parity.

The parity classes are the load-bearing guarantee of the optimizer work:
with the optimizer on or off, a query must produce byte-identical result
rows, where-lineage, *and* how-polynomials ("provenance survives
optimization").  The hypothesis corpus at the bottom drives randomized
queries through both paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb.catalog import Catalog
from repro.sqldb.executor import SelectExecutor
from repro.sqldb.parser import parse_sql
from repro.sqldb.planner import conjoin, plan_select, split_conjuncts


def _plan(db: Database, sql: str):
    statement = parse_sql(sql)
    return plan_select(statement, db.catalog)


def _both_ways(db: Database, sql: str, capture_how: bool = True):
    """Execute ``sql`` with the optimizer on and off; return both results."""
    statement = parse_sql(sql)
    optimized = SelectExecutor(
        db.catalog, capture_how=capture_how, optimize=True
    ).execute(statement)
    interpreted = SelectExecutor(
        db.catalog, capture_how=capture_how, optimize=False
    ).execute(statement)
    return optimized, interpreted


def assert_parity(db: Database, sql: str, capture_how: bool = True) -> None:
    optimized, interpreted = _both_ways(db, sql, capture_how)
    assert optimized.columns == interpreted.columns
    assert optimized.rows == interpreted.rows
    assert optimized.lineage == interpreted.lineage
    if capture_how:
        assert optimized.how == interpreted.how


class TestConjuncts:
    def test_split_flattens_nested_and(self):
        expr = parse_sql(
            "SELECT 1 FROM t WHERE (a = 1 AND b = 2) AND (c = 3 AND d = 4)"
        ).where
        parts = split_conjuncts(expr)
        assert [part.to_sql() for part in parts] == [
            "(a = 1)",
            "(b = 2)",
            "(c = 3)",
            "(d = 4)",
        ]

    def test_split_keeps_or_whole(self):
        expr = parse_sql("SELECT 1 FROM t WHERE a = 1 OR b = 2").where
        assert len(split_conjuncts(expr)) == 1

    def test_conjoin_round_trips(self):
        expr = parse_sql("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3").where
        rebuilt = conjoin(split_conjuncts(expr))
        assert rebuilt.to_sql() == expr.to_sql()

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None


class TestPushdown:
    def test_single_table_conjunct_pushed_into_scan(self, employees_db):
        plan = _plan(
            employees_db,
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "WHERE e.salary > 80 AND d.floor = 2",
        )
        assert plan.pushed_conjuncts == 2
        assert plan.base.predicate is not None
        assert plan.joins[0].scan.predicate is not None
        assert plan.where is None

    def test_multi_table_conjunct_stays_residual(self, employees_db):
        plan = _plan(
            employees_db,
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "WHERE e.salary > d.budget",
        )
        assert plan.pushed_conjuncts == 0
        assert plan.where is not None

    def test_subquery_conjunct_not_pushed(self, employees_db):
        plan = _plan(
            employees_db,
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "WHERE e.salary > (SELECT MIN(budget) FROM departments)",
        )
        assert plan.pushed_conjuncts == 0

    def test_left_join_right_side_not_pushed(self, employees_db):
        # Filtering the null-padded side early would let padded rows leak
        # past the WHERE clause.
        plan = _plan(
            employees_db,
            "SELECT e.name FROM employees e "
            "LEFT JOIN departments d ON e.department = d.department "
            "WHERE d.floor = 2",
        )
        assert plan.pushed_conjuncts == 0
        assert plan.joins[0].scan.predicate is None

    def test_left_join_left_side_is_pushed(self, employees_db):
        plan = _plan(
            employees_db,
            "SELECT e.name FROM employees e "
            "LEFT JOIN departments d ON e.department = d.department "
            "WHERE e.city = 'zurich'",
        )
        assert plan.pushed_conjuncts == 1
        assert plan.base.predicate is not None

    def test_unknown_column_left_residual_and_still_raises(self, employees_db):
        plan = _plan(
            employees_db,
            "SELECT name FROM employees WHERE nonexistent = 1",
        )
        assert plan.pushed_conjuncts == 0
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="nonexistent"):
            employees_db.execute("SELECT name FROM employees WHERE nonexistent = 1")

    def test_pushdown_with_nulls_matches_3vl(self, employees_db):
        # eve has NULL salary: the pushed predicate must keep only
        # exactly-TRUE rows, as the unoptimized WHERE does.
        assert_parity(
            employees_db,
            "SELECT e.name FROM employees e "
            "JOIN departments d ON e.department = d.department "
            "WHERE e.salary > 75 ORDER BY e.name",
        )

    def test_pushdown_scan_counts_all_base_rows(self, employees_db):
        optimized, interpreted = _both_ways(
            employees_db,
            "SELECT name FROM employees WHERE salary > 85",
        )
        assert optimized.scanned_rows == interpreted.scanned_rows == 5


class TestEquiJoinDetection:
    def test_multi_key_conjunction_becomes_composite_key(self):
        db = Database()
        db.execute("CREATE TABLE l (a INT, b INT, v TEXT)")
        db.execute("CREATE TABLE r (a INT, b INT, w TEXT)")
        plan = _plan(
            db,
            "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b",
        )
        join = plan.joins[0]
        assert join.is_hash_join
        assert len(join.left_keys) == 2
        assert join.residual is None

    def test_qualified_refs_in_nested_and_tree(self):
        db = Database()
        db.execute("CREATE TABLE l (a INT, b INT, c INT)")
        db.execute("CREATE TABLE r (a INT, b INT, c INT)")
        plan = _plan(
            db,
            "SELECT l.c FROM l JOIN r ON (l.a = r.a) AND (r.b = l.b AND l.c = r.c)",
        )
        join = plan.joins[0]
        assert len(join.left_keys) == 3
        assert join.residual is None

    def test_ambiguous_unqualified_ref_falls_to_residual(self):
        # Both tables have column `a`; an unqualified `a` cannot be a key.
        db = Database()
        db.execute("CREATE TABLE l (a INT)")
        db.execute("CREATE TABLE r (a INT, b INT)")
        plan = _plan(db, "SELECT 1 FROM l JOIN r ON a = r.b")
        join = plan.joins[0]
        assert not join.is_hash_join
        assert join.residual is not None

    def test_non_equi_conjunct_becomes_residual(self):
        db = Database()
        db.execute("CREATE TABLE l (a INT, x INT)")
        db.execute("CREATE TABLE r (a INT, y INT)")
        plan = _plan(db, "SELECT 1 FROM l JOIN r ON l.a = r.a AND l.x < r.y")
        join = plan.joins[0]
        assert join.is_hash_join
        assert len(join.left_keys) == 1
        assert join.residual is not None

    def test_same_side_equality_is_residual_not_key(self):
        db = Database()
        db.execute("CREATE TABLE l (a INT, b INT)")
        db.execute("CREATE TABLE r (c INT)")
        plan = _plan(db, "SELECT 1 FROM l JOIN r ON l.a = l.b")
        join = plan.joins[0]
        assert not join.is_hash_join
        assert join.residual is not None

    def test_multi_key_join_executes_correctly(self):
        db = Database(capture_how=True)
        db.execute("CREATE TABLE l (a INT, b INT, v TEXT)")
        db.execute(
            "INSERT INTO l VALUES (1,1,'p'), (1,2,'q'), (2,1,'r'), (NULL,1,'s')"
        )
        db.execute("CREATE TABLE r (a INT, b INT, w TEXT)")
        db.execute(
            "INSERT INTO r VALUES (1,1,'P'), (1,1,'P2'), (2,1,'R'), (NULL,1,'S')"
        )
        result = db.execute(
            "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b"
        )
        # NULL keys never match — 's'/'S' rows drop out.
        assert sorted(result.rows) == [("p", "P"), ("p", "P2"), ("r", "R")]
        assert_parity(
            db, "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b"
        )

    def test_left_join_multi_key_pads_unmatched(self):
        db = Database(capture_how=True)
        db.execute("CREATE TABLE l (a INT, b INT, v TEXT)")
        db.execute("INSERT INTO l VALUES (1,1,'p'), (9,9,'z'), (NULL,1,'n')")
        db.execute("CREATE TABLE r (a INT, b INT, w TEXT)")
        db.execute("INSERT INTO r VALUES (1,1,'P')")
        sql = (
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.a = r.a AND l.b = r.b "
            "ORDER BY l.v"
        )
        result = db.execute(sql)
        assert result.rows == [("n", None), ("p", "P"), ("z", None)]
        assert_parity(db, sql)


class TestLegacyJoinFastPaths:
    """The satellite bugfixes apply to the optimizer-off path too."""

    def test_left_join_hash_path_matches_nested_loop(self):
        db = Database(capture_how=True)
        db.execute("CREATE TABLE a (x INT)")
        db.execute("INSERT INTO a VALUES (1), (2), (NULL)")
        db.execute("CREATE TABLE b (x INT, y TEXT)")
        db.execute("INSERT INTO b VALUES (1, 'one'), (1, 'uno')")
        sql = "SELECT a.x, b.y FROM a LEFT JOIN b ON a.x = b.x"
        interpreted = SelectExecutor(
            db.catalog, capture_how=True, optimize=False
        ).execute(parse_sql(sql))
        assert interpreted.rows == [(1, "one"), (1, "uno"), (2, None), (None, None)]
        assert_parity(db, sql)

    def test_inner_join_empty_side_short_circuits(self):
        db = Database()
        db.execute("CREATE TABLE a (x INT)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("CREATE TABLE b (x INT)")
        sql = "SELECT a.x FROM a JOIN b ON a.x = b.x"
        assert_parity(db, sql)
        assert db.execute(sql).rows == []


# -- randomized parity corpus ----------------------------------------------------


def _corpus_db() -> Database:
    db = Database(capture_how=True)
    db.execute("CREATE TABLE t (a INT, b INT, c TEXT)")
    db.execute(
        "INSERT INTO t VALUES "
        "(1, 10, 'x'), (2, 20, 'y'), (3, NULL, 'x'), (NULL, 40, 'z'), "
        "(5, 50, NULL), (2, 20, 'x'), (1, NULL, 'y')"
    )
    db.execute("CREATE TABLE u (a INT, d INT)")
    db.execute("INSERT INTO u VALUES (1, 100), (2, 200), (2, 201), (NULL, 300)")
    return db


_CORPUS_DB = _corpus_db()

_COMPARISONS = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
_T_NUM_COLS = st.sampled_from(["t.a", "t.b"])
_LITERALS = st.sampled_from(["1", "2", "20", "NULL", "0"])


@st.composite
def _predicates(draw) -> str:
    """A small WHERE grammar over t (and optionally u) columns."""
    depth = draw(st.integers(min_value=0, max_value=2))
    if depth == 0:
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            return (
                f"{draw(_T_NUM_COLS)} {draw(_COMPARISONS)} {draw(_LITERALS)}"
            )
        if kind == 1:
            return f"{draw(_T_NUM_COLS)} IS {'NOT ' if draw(st.booleans()) else ''}NULL"
        if kind == 2:
            return f"t.c {draw(st.sampled_from(['=', '<>']))} 'x'"
        return f"{draw(_T_NUM_COLS)} IN (1, 2, NULL)"
    connector = draw(st.sampled_from(["AND", "OR"]))
    left = draw(_predicates())
    right = draw(_predicates())
    return f"({left}) {connector} ({right})"


@st.composite
def _queries(draw) -> str:
    """Single-table and join queries exercising pushdown and equi-keys."""
    joined = draw(st.booleans())
    where = draw(st.one_of(st.none(), _predicates()))
    if joined:
        sql = "SELECT t.a, t.c, u.d FROM t JOIN u ON t.a = u.a"
    else:
        sql = "SELECT a, b, c FROM t"
    if where is not None:
        sql += f" WHERE {where}"
    if draw(st.booleans()):
        sql += " ORDER BY t.a" if joined else " ORDER BY a"
    return sql


class TestRandomizedParity:
    @settings(max_examples=120, deadline=None)
    @given(sql=_queries())
    def test_optimizer_parity_on_corpus(self, sql):
        assert_parity(_CORPUS_DB, sql)

    @settings(max_examples=40, deadline=None)
    @given(sql=_queries())
    def test_parity_without_how_capture(self, sql):
        assert_parity(_CORPUS_DB, sql, capture_how=False)

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(st.sampled_from(["l.a = r.a", "l.b = r.b"]), min_size=1,
                      max_size=2, unique=True),
        left_rows=st.lists(
            st.tuples(st.integers(0, 3) | st.none(), st.integers(0, 2) | st.none()),
            min_size=0, max_size=8,
        ),
        right_rows=st.lists(
            st.tuples(st.integers(0, 3) | st.none(), st.integers(0, 2) | st.none()),
            min_size=0, max_size=8,
        ),
        left_outer=st.booleans(),
    )
    def test_randomized_join_parity(self, keys, left_rows, right_rows, left_outer):
        db = Database(capture_how=True)
        db.execute("CREATE TABLE l (a INT, b INT)")
        db.execute("CREATE TABLE r (a INT, b INT)")
        for a, b in left_rows:
            db.catalog.table("l").insert((a, b))
        for a, b in right_rows:
            db.catalog.table("r").insert((a, b))
        join_kind = "LEFT JOIN" if left_outer else "JOIN"
        sql = f"SELECT l.a, l.b, r.a, r.b FROM l {join_kind} r ON {' AND '.join(keys)}"
        assert_parity(db, sql)
