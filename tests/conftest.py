"""Shared fixtures.

Session-scoped where construction is expensive (domain registries,
vector datasets); function-scoped where tests mutate state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    build_ecommerce_registry,
    build_healthcare_registry,
    build_swiss_labour_registry,
)
from repro.kg import SchemaKnowledgeGraph
from repro.obs import get_event_log, get_registry
from repro.sqldb import Database


@pytest.fixture(autouse=True)
def reset_metrics():
    """Zero the global metrics registry and event log around every test.

    Reset is in place, so handles cached inside long-lived objects
    (session-scoped domains, module-level counters) stay wired up.
    """
    get_registry().reset()
    get_event_log().reset()
    yield
    get_registry().reset()
    get_event_log().reset()


@pytest.fixture
def employees_db() -> Database:
    """A small employees/departments database with FK and NULLs."""
    db = Database(capture_how=True)
    db.execute(
        "CREATE TABLE employees (id INT PRIMARY KEY, name TEXT, "
        "department TEXT, salary FLOAT, city TEXT)"
    )
    db.execute(
        "INSERT INTO employees VALUES "
        "(1,'ann','engineering',100.0,'zurich'),"
        "(2,'bob','engineering',90.0,'bern'),"
        "(3,'cat','sales',80.0,'zurich'),"
        "(4,'dan','sales',70.0,'geneva'),"
        "(5,'eve','sales',NULL,'zurich')"
    )
    db.execute(
        "CREATE TABLE departments (department TEXT PRIMARY KEY, "
        "budget FLOAT, floor INT)"
    )
    db.execute(
        "INSERT INTO departments VALUES ('engineering',500.0,3),('sales',300.0,2)"
    )
    db.catalog.add_foreign_key("employees", "department", "departments", "department")
    return db


@pytest.fixture
def employees_kg(employees_db) -> SchemaKnowledgeGraph:
    """Schema knowledge graph over the employees database."""
    return SchemaKnowledgeGraph(employees_db.catalog)


@pytest.fixture(scope="session")
def swiss_domain():
    """The synthetic Swiss labour-market domain (read-only in tests)."""
    return build_swiss_labour_registry(seed=7)


@pytest.fixture(scope="session")
def ecommerce_domain():
    """The synthetic e-commerce domain (read-only in tests)."""
    return build_ecommerce_registry(seed=7)


@pytest.fixture(scope="session")
def healthcare_domain():
    """The synthetic healthcare domain (read-only in tests)."""
    return build_healthcare_registry(seed=7)


@pytest.fixture(scope="session")
def clustered_vectors():
    """A small clustered vector dataset plus queries (read-only)."""
    from repro.vector import generate_clustered_dataset
    from repro.vector.dataset import generate_query_set

    rng = np.random.default_rng(11)
    dataset = generate_clustered_dataset(1500, 24, 12, rng)
    queries = generate_query_set(dataset, 12, rng)
    return dataset, queries
