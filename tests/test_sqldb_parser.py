"""Tests for the SQL parser and AST round-tripping."""

import pytest

from repro.errors import ParseError
from repro.sqldb import ast
from repro.sqldb.parser import parse_expression, parse_sql


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.from_table.name == "t"

    def test_select_without_from(self):
        stmt = parse_sql("SELECT 1 + 2")
        assert stmt.from_table is None

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t AS s")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "s"

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        star = stmt.items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "t"

    def test_where_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 10 "
            "GROUP BY dept HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5 OFFSET 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_joins(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT JOIN c ON b.y = c.y CROSS JOIN d"
        )
        kinds = [join.kind for join in stmt.joins]
        assert kinds == ["INNER", "LEFT", "CROSS"]
        assert stmt.joins[2].condition is None

    def test_inner_keyword_optional(self):
        stmt = parse_sql("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "INNER"

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT 1;") is not None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT 1 garbage extra")


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.operator == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.operator == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.operator == "OR"
        assert expr.right.operator == "AND"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.operator == "*"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operator == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_unary_plus_absorbed(self):
        expr = parse_expression("+5")
        assert isinstance(expr, ast.Literal)

    def test_is_null(self):
        expr = parse_expression("a IS NULL")
        assert isinstance(expr, ast.IsNull)
        assert not expr.negated

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 10").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")

    def test_function_call(self):
        expr = parse_expression("UPPER(name)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "UPPER"

    def test_aggregate_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, ast.AggregateCall)
        assert isinstance(expr.argument, ast.Star)

    def test_aggregate_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("'s'").value == "s"

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr.table == "t"
        assert expr.name == "col"

    def test_concat_operator(self):
        expr = parse_expression("a || b")
        assert expr.operator == "||"


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, score FLOAT)"
        )
        assert isinstance(stmt, ast.CreateTableStatement)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null

    def test_insert_positional(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.InsertStatement)
        assert len(stmt.rows) == 2
        assert stmt.columns == ()

    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_sql("DELETE FROM t")


class TestRoundTrip:
    """text -> AST -> text -> AST must be a fixpoint (losslessness)."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t",
            "SELECT DISTINCT a, b AS x FROM t WHERE (a > 1) ORDER BY a ASC LIMIT 3",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING (COUNT(*) > 2)",
            "SELECT * FROM a INNER JOIN b ON (a.x = b.x)",
            "SELECT CASE WHEN (a > 1) THEN 'x' ELSE 'y' END FROM t",
            "SELECT a FROM t WHERE (name LIKE 'a%') OR (a IN (1, 2))",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2",
        ],
    )
    def test_fixpoint(self, sql):
        once = parse_sql(sql).to_sql()
        twice = parse_sql(once).to_sql()
        assert once == twice

    def test_expression_round_trip_preserves_meaning(self):
        original = parse_expression("a + 2 * b - 1")
        rebuilt = parse_expression(original.to_sql())
        assert rebuilt.to_sql() == original.to_sql()
