"""Tests for the analytics routines."""

import numpy as np
import pytest

from repro.analytics import (
    decompose,
    describe,
    detect_seasonality,
    group_summary,
    iqr_outliers,
    pearson_correlation,
    sufficient_data,
    zscore_outliers,
)
from repro.analytics.timeseries import InsufficientDataError
from repro.errors import CDAError


def planted_series(n=120, period=12, amplitude=3.0, slope=0.05, noise=0.3, seed=0):
    rng = np.random.default_rng(seed)
    months = np.arange(n, dtype=float)
    return (
        100.0
        + slope * months
        + amplitude * np.sin(2 * np.pi * months / period)
        + rng.normal(0, noise, size=n)
    )


class TestDecomposition:
    def test_components_sum_to_observed(self):
        series = planted_series()
        parts = decompose(series, 12)
        mask = ~np.isnan(parts.trend)
        reconstructed = parts.trend[mask] + parts.seasonal[mask] + parts.residual[mask]
        np.testing.assert_allclose(reconstructed, series[mask])

    def test_seasonal_component_repeats(self):
        parts = decompose(planted_series(), 12)
        np.testing.assert_allclose(parts.seasonal[:12], parts.seasonal[12:24])

    def test_seasonal_sums_to_zero(self):
        parts = decompose(planted_series(), 12)
        assert abs(parts.seasonal[:12].sum()) < 1e-9

    def test_strengths_detect_structure(self):
        structured = decompose(planted_series(noise=0.2), 12)
        assert structured.seasonal_strength > 0.8
        assert structured.trend_strength > 0.5

    def test_noise_has_low_seasonal_strength(self):
        rng = np.random.default_rng(1)
        parts = decompose(rng.normal(size=120), 12)
        assert parts.seasonal_strength < 0.4

    def test_insufficient_data_aborts(self):
        with pytest.raises(InsufficientDataError) as excinfo:
            decompose(planted_series(n=20), 12)
        assert excinfo.value.needed == 24
        assert excinfo.value.available == 20

    def test_odd_period(self):
        parts = decompose(planted_series(n=105, period=7), 7)
        assert parts.seasonal_strength > 0.5

    def test_nan_rejected(self):
        series = planted_series()
        series[3] = np.nan
        with pytest.raises(CDAError):
            decompose(series, 12)

    def test_sufficient_data_helper(self):
        assert sufficient_data(24, 12)
        assert not sufficient_data(23, 12)
        assert not sufficient_data(100, 1)


class TestSeasonalityDetection:
    def test_recovers_planted_period(self):
        result = detect_seasonality(planted_series(period=12))
        assert result.period == 12
        assert result.confidence > 0.8

    @pytest.mark.parametrize("period", [4, 6, 12])
    def test_various_periods(self, period):
        result = detect_seasonality(planted_series(n=10 * period, period=period))
        assert result.period == period

    def test_prefers_fundamental_over_harmonic(self):
        result = detect_seasonality(planted_series(period=6))
        assert result.period == 6  # not 12 or 18

    def test_white_noise_abstains(self):
        rng = np.random.default_rng(2)
        result = detect_seasonality(rng.normal(size=150))
        assert result.abstained
        assert result.sufficient

    def test_short_series_insufficient(self):
        result = detect_seasonality([1.0, 2.0, 3.0])
        assert result.abstained
        assert not result.sufficient

    def test_confidence_grows_with_length(self):
        short = detect_seasonality(planted_series(n=30, noise=1.2))
        long = detect_seasonality(planted_series(n=240, noise=1.2))
        assert long.confidence >= short.confidence

    def test_describe_mentions_period_and_confidence(self):
        result = detect_seasonality(planted_series())
        text = result.describe()
        assert "12" in text
        assert "%" in text

    def test_describe_abstention(self):
        result = detect_seasonality([1.0, 2.0])
        assert "too short" in result.describe()

    def test_trend_does_not_mask_seasonality(self):
        result = detect_seasonality(planted_series(slope=0.8))
        assert result.period == 12


class TestDescriptiveStats:
    def test_basic_stats(self):
        stats = describe([1.0, 2.0, 3.0, 4.0, None])
        assert stats.count == 4
        assert stats.nulls == 1
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_single_value(self):
        stats = describe([5.0])
        assert stats.std == 0.0

    def test_all_null_rejected(self):
        with pytest.raises(CDAError):
            describe([None, None])

    def test_describe_text(self):
        assert "mean=" in describe([1.0, 2.0]).describe()


class TestCorrelation:
    def test_planted_positive_correlation(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 10, size=100)
        y = 2 * x + rng.normal(0, 1, size=100)
        result = pearson_correlation(x.tolist(), y.tolist())
        assert result.coefficient > 0.9
        assert result.significant

    def test_null_pairs_dropped(self):
        result = pearson_correlation([1, 2, 3, None, 5], [2, 4, 6, 8, None])
        assert result.n == 3

    def test_constant_column_rejected(self):
        with pytest.raises(CDAError):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(CDAError):
            pearson_correlation([1, 2], [1])

    def test_describe_wording(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(size=50)
        y = x + rng.normal(0, 0.05, size=50)
        text = pearson_correlation(x.tolist(), y.tolist()).describe()
        assert "strong positive" in text


class TestGroupSummary:
    def test_per_group(self):
        summary = group_summary(["a", "a", "b"], [1.0, 3.0, 10.0])
        assert summary["a"].mean == pytest.approx(2.0)
        assert summary["b"].count == 1

    def test_alignment_required(self):
        with pytest.raises(CDAError):
            group_summary(["a"], [1, 2])


class TestOutliers:
    def test_zscore_finds_planted_outlier(self):
        values = [10.0] * 30 + [10.5] * 30 + [9.5] * 30 + [100.0]
        report = zscore_outliers(values)
        assert report.count == 1
        assert report.values == [100.0]

    def test_iqr_finds_planted_outlier(self):
        values = list(np.linspace(1, 10, 50)) + [500.0]
        report = iqr_outliers(values)
        assert 500.0 in report.values

    def test_clean_data_no_outliers(self):
        rng = np.random.default_rng(5)
        report = iqr_outliers(rng.uniform(0, 1, size=100).tolist(), multiplier=3.0)
        assert report.count == 0

    def test_indices_refer_to_original_positions(self):
        values = [1.0, None, 1.1, 0.9, 1.0, 1.05, 0.95, 99.0]
        report = zscore_outliers(values, threshold=2.0)
        assert report.indices == [7]

    def test_constant_data(self):
        report = zscore_outliers([5.0] * 10)
        assert report.count == 0

    def test_describe(self):
        values = list(np.linspace(1, 10, 50)) + [500.0]
        assert "outlier" in iqr_outliers(values).describe()

    def test_minimums(self):
        with pytest.raises(CDAError):
            zscore_outliers([1.0, 2.0])
        with pytest.raises(CDAError):
            iqr_outliers([1.0, 2.0, 3.0])
