"""Tests for the hashing text embedder."""

import numpy as np
import pytest

from repro.errors import VectorError
from repro.vector.embedding import HashingEmbedder, tokenize_text


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize_text("Hello, World-2024!") == ["hello", "world", "2024"]

    def test_empty(self):
        assert tokenize_text("...") == []


class TestEmbedder:
    def test_deterministic(self):
        embedder = HashingEmbedder(dim=32)
        a = embedder.embed("labour market data")
        b = embedder.embed("labour market data")
        np.testing.assert_array_equal(a, b)

    def test_normalised(self):
        embedder = HashingEmbedder(dim=32)
        vector = embedder.embed("some text here")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        embedder = HashingEmbedder(dim=16)
        assert np.linalg.norm(embedder.embed("")) == 0.0

    def test_similar_texts_closer_than_dissimilar(self):
        embedder = HashingEmbedder(dim=128)
        base = "swiss labour market statistics"
        near = embedder.similarity(base, "labour market statistics of switzerland")
        far = embedder.similarity(base, "chocolate cake recipe with walnuts")
        assert near > far

    def test_shared_ngrams_give_typo_robustness(self):
        embedder = HashingEmbedder(dim=128)
        assert embedder.similarity("barometer", "barometr") > 0.4

    def test_batch_alignment(self):
        embedder = HashingEmbedder(dim=32)
        texts = ["a b c", "d e f"]
        matrix = embedder.embed_batch(texts)
        np.testing.assert_array_equal(matrix[0], embedder.embed(texts[0]))
        np.testing.assert_array_equal(matrix[1], embedder.embed(texts[1]))

    def test_empty_batch(self):
        assert HashingEmbedder(dim=8).embed_batch([]).shape == (0, 8)

    def test_dim_validation(self):
        with pytest.raises(VectorError):
            HashingEmbedder(dim=0)

    def test_dim_respected(self):
        assert HashingEmbedder(dim=48).embed("x").shape == (48,)
