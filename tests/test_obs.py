"""Observability layer: spans, metrics registry, export, integration.

Covers the tentpole acceptance criteria: span nesting and exception
status, registry reset isolation between tests, JSON round-trip of the
trace tree, the per-turn span tree covering every pipeline stage with
sqldb / retrieval children, and the near-zero cost of tracing off.
"""

from __future__ import annotations

import time

import pytest

from repro.core import CDAEngine, ReliabilityConfig
from repro.errors import SoundnessError
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    current_span,
    from_json,
    get_registry,
    render_text,
    span,
    stage_timings,
    start_trace,
    to_dict,
    to_json,
)


@pytest.fixture
def engine(swiss_domain) -> CDAEngine:
    return CDAEngine(swiss_domain.registry, swiss_domain.vocabulary)


# -- spans -------------------------------------------------------------------


class TestSpan:
    def test_nesting_follows_call_structure(self):
        with start_trace("root") as root:
            with span("child_a"):
                with span("grandchild"):
                    pass
            with span("child_b"):
                pass
        assert root.stage_names() == ["child_a", "child_b"]
        assert root.children[0].stage_names() == ["grandchild"]
        assert [s.name for s in root.iter_spans()] == [
            "root", "child_a", "grandchild", "child_b",
        ]

    def test_span_without_active_trace_is_the_shared_noop(self):
        assert span("anything") is NULL_SPAN
        assert current_span() is NULL_SPAN
        assert NULL_SPAN.recording is False
        # Full Span surface, all no-ops.
        with span("ignored") as s:
            s.set_attribute("k", 1).set_attributes(a=2)
        assert s is NULL_SPAN

    def test_exception_marks_error_status_and_propagates(self):
        with pytest.raises(ValueError):
            with start_trace("root") as root:
                with span("failing"):
                    raise ValueError("boom")
        failing = root.find("failing")
        assert failing.status == "error"
        assert failing.error == "ValueError: boom"
        assert root.status == "error"  # the exception crossed the root too
        # The contextvar was restored despite the exception.
        assert current_span() is NULL_SPAN

    def test_timings_are_monotonic_and_nested(self):
        with start_trace("root") as root:
            with span("child"):
                time.sleep(0.001)
        child = root.find("child")
        assert child.duration_ns > 0
        assert root.duration_ns >= child.duration_ns
        assert child.duration_ms == pytest.approx(child.duration_ns / 1e6)

    def test_attributes_and_find_all(self):
        with start_trace("root", question="q") as root:
            with span("stage", k=1) as s:
                s.set_attribute("rows", 3)
            with span("stage"):
                pass
        assert root.attributes == {"question": "q"}
        assert root.children[0].attributes == {"k": 1, "rows": 3}
        assert len(root.find_all("stage")) == 2

    def test_nested_start_trace_attaches_to_active_trace(self):
        with start_trace("outer") as outer:
            with start_trace("inner"):
                pass
        assert outer.stage_names() == ["inner"]


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        c = registry.counter("c")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5
        g = registry.gauge("g")
        g.set(2.0)
        g.inc()
        g.dec(0.5)
        assert g.snapshot() == 2.5
        h = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 500.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.5 and snap["max"] == 500.0
        assert snap["overflow"] == 1
        assert h.mean == pytest.approx(505.5 / 3)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_reset_zeroes_in_place_keeping_handles(self):
        registry = MetricsRegistry()
        handle = registry.counter("kept")
        handle.inc(7)
        registry.reset()
        assert handle.value == 0
        handle.inc()
        assert registry.counter("kept").value == 1
        assert registry.counter("kept") is handle

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("a.one").inc()
        registry.counter("b.two").inc()
        assert list(registry.snapshot(prefix="a.")) == ["a.one"]
        assert registry.names() == ["a.one", "b.two"]
        assert "a.one" in registry


# These two tests together prove the autouse reset fixture isolates
# tests: whichever runs second sees a clean global counter.

def test_registry_isolation_first():
    get_registry().counter("obs.test.isolation").inc()
    assert get_registry().counter("obs.test.isolation").value == 1


def test_registry_isolation_second():
    assert get_registry().counter("obs.test.isolation").value <= 1
    get_registry().counter("obs.test.isolation").inc()
    assert get_registry().counter("obs.test.isolation").value == 1


# -- export ------------------------------------------------------------------


class TestExport:
    def _sample_trace(self) -> Span:
        with start_trace("engine.ask", question="q") as root:
            with span("stage_a", rows=3) as a:
                a.set_attribute("weird", {"tuple": (1, 2)})
            try:
                with span("stage_b"):
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
        return root

    def test_json_round_trip_is_lossless(self):
        root = self._sample_trace()
        payload = to_dict(root)
        assert to_dict(from_json(to_json(root))) == payload
        assert payload["children"][1]["status"] == "error"
        # Exotic attribute values were coerced to JSON-safe forms.
        assert payload["children"][0]["attributes"]["weird"] == {"tuple": [1, 2]}

    def test_error_status_spans_round_trip_through_json(self):
        # Satellite check: an exception inside a span must survive the
        # full JSON round trip with status "error" AND its message.
        try:
            with start_trace("engine.ask") as root:
                with span("engine.execution"):
                    raise SoundnessError("verification exploded")
        except SoundnessError:
            pass
        restored = from_json(to_json(root))
        failed = restored.find("engine.execution")
        assert failed.status == "error"
        assert failed.error == "SoundnessError: verification exploded"
        assert restored.status == "error"
        # A second round trip is a fixed point.
        assert to_dict(from_json(to_json(restored))) == to_dict(restored)

    def test_render_text_shows_tree_and_errors(self):
        report = render_text(self._sample_trace())
        lines = report.splitlines()
        assert lines[0].startswith("engine.ask")
        assert lines[1].startswith("  stage_a")
        assert "RuntimeError: nope" in report
        assert "ms" in lines[0]

    def test_stage_timings_aggregates_direct_children(self):
        roots = [self._sample_trace(), self._sample_trace()]
        stages = stage_timings(roots)
        assert set(stages) == {"stage_a", "stage_b"}
        assert stages["stage_a"]["count"] == 2
        assert stages["stage_a"]["mean_ms"] == pytest.approx(
            stages["stage_a"]["total_ms"] / 2, abs=1e-6
        )


# -- engine integration ------------------------------------------------------


class TestEngineTracing:
    def test_data_ask_covers_every_pipeline_stage(self, engine):
        answer = engine.ask("how many employees are there")
        assert answer.kind.value == "data"
        root = answer.trace
        assert root is not None and root.name == "engine.ask"
        stages = root.stage_names()
        for stage in (
            "engine.intent",
            "nl.nl2sql.ground",
            "nl.nl2sql.translate",
            "engine.execution",
            "engine.verification",
            "soundness.confidence.fuse",
            "engine.abstention",
        ):
            assert stage in stages
        assert len(stages) >= 6
        # sqldb children hang under the execution stage.
        execution = root.find("engine.execution")
        assert execution.find("sqldb.executor.execute") is not None
        assert root.find("soundness.verifier.verify") is not None
        # And the whole turn exports both ways.
        assert to_dict(from_json(to_json(root))) == to_dict(root)
        assert "engine.ask" in render_text(root)

    def test_discovery_ask_has_retrieval_children(self, engine):
        answer = engine.ask("what data do you have about employment")
        root = answer.trace
        retrieval = root.find("engine.retrieval")
        assert retrieval is not None
        assert retrieval.find("retrieval.discovery.search") is not None
        assert retrieval.find("retrieval.hybrid.search") is not None
        assert retrieval.find("vector.index.search_batch") is not None

    def test_failed_grounding_is_recorded_as_error_span(self, engine):
        answer = engine.ask("what is the average monthly salary by canton")
        ground = answer.trace.find("nl.nl2sql.ground")
        assert ground is not None
        assert ground.status == "error"
        assert "TranslationError" in ground.error

    def test_tracing_off_attaches_no_trace(self, swiss_domain):
        engine = CDAEngine(
            swiss_domain.registry,
            swiss_domain.vocabulary,
            config=ReliabilityConfig(tracing=False),
        )
        answer = engine.ask("how many employees are there")
        assert answer.kind.value == "data"
        assert answer.trace is None
        # No trace active inside the call either: instrumented call sites
        # degenerated to the shared no-op.
        assert current_span() is NULL_SPAN

    def test_disabled_span_overhead_is_tiny(self):
        # Loose bound: the disabled path (one call + one contextvar read)
        # must stay within a few microseconds per call even on slow CI.
        iterations = 10_000
        started = time.perf_counter()
        for _ in range(iterations):
            with span("off"):
                pass
        per_call = (time.perf_counter() - started) / iterations
        assert per_call < 20e-6

    def test_metrics_flow_from_an_ask(self, engine):
        # The session-scoped domain shares its query cache across tests,
        # so assert on lookups (hit or miss), not executor runs.
        registry = get_registry()
        engine.ask("how many employees are there")
        lookups = (
            registry.counter("sqldb.cache.hits").value
            + registry.counter("sqldb.cache.misses").value
        )
        assert lookups >= 1
        assert registry.counter("core.session.questions").value >= 1
        assert registry.counter("soundness.verifier.passed").value >= 1


# -- satellite: cache stats through the registry ------------------------------


class TestCacheMetrics:
    def test_cache_hits_and_misses_reach_registry(self):
        from repro.sqldb import Database

        db = Database(cache_size=8)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        registry = get_registry()
        registry.reset()
        db.execute("SELECT v FROM t")  # miss
        db.execute("SELECT v FROM t")  # hit
        db.execute("INSERT INTO t VALUES (3, 30)")  # bumps version
        db.execute("SELECT v FROM t")  # invalidation + miss
        assert registry.counter("sqldb.cache.hits").value == 1
        assert registry.counter("sqldb.cache.misses").value == 2
        assert registry.counter("sqldb.cache.invalidations").value == 1
        assert db.cache.stats.snapshot() == {
            "hits": 1, "misses": 2, "invalidations": 1, "hit_rate": 1 / 3,
        }
        assert db.cache.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_guards_divide_by_zero(self):
        from repro.sqldb.cache import CacheStats, QueryCache

        assert CacheStats().hit_rate == 0.0
        assert QueryCache().hit_rate == 0.0

    def test_clear_can_reset_stats(self):
        from repro.sqldb import Database

        db = Database(cache_size=8)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT id FROM t")
        db.cache.clear()
        assert db.cache.stats.misses == 1  # kept by default
        db.cache.clear(reset_stats=True)
        assert db.cache.stats.snapshot() == {
            "hits": 0, "misses": 0, "invalidations": 0, "hit_rate": 0.0,
        }


# -- satellite: session snapshot ---------------------------------------------


class TestSessionSnapshot:
    def test_snapshot_tracks_turns_and_counters(self, engine):
        engine.ask("how many employees are there")
        engine.ask("how many cantons are there")
        snap = engine.session.snapshot()
        assert snap["questions_asked"] == 2
        assert snap["answers_given"] == 2
        assert snap["turns"] == 4
        assert snap["pending_clarification"] is False
        registry = get_registry()
        assert registry.counter("core.session.questions").value == 2
        assert registry.counter("core.session.answers").value == 2


# -- soundness guard (unchanged semantics under the span wrapper) -------------


def test_fuse_confidence_still_validates_inputs():
    from repro.soundness.confidence import fuse_confidence

    with pytest.raises(SoundnessError):
        fuse_confidence()
    breakdown = fuse_confidence(self_reported=0.9, grounding=0.8)
    assert 0.0 <= breakdown.value <= 1.0
    assert "grounding" in breakdown.parts
