"""Tests for the similarity-search substrate."""

import numpy as np
import pytest

from repro.errors import (
    DimensionMismatchError,
    IndexNotBuiltError,
    VectorError,
)
from repro.vector import (
    BruteForceIndex,
    HNSWIndex,
    IVFIndex,
    LSHIndex,
    LearnedStopIVFIndex,
    Metric,
    ProgressiveIndex,
    VectorDataset,
    generate_clustered_dataset,
    pairwise_distances,
)
from repro.vector.base import recall_at_k
from repro.vector.dataset import generate_query_set
from repro.vector.kmeans import kmeans
from repro.vector.progressive import prefix_containment_probability


class TestDistances:
    def test_l2_matches_numpy(self):
        rng = np.random.default_rng(0)
        query = rng.normal(size=8)
        data = rng.normal(size=(20, 8))
        ours = pairwise_distances(query, data, Metric.L2)
        reference = np.linalg.norm(data - query, axis=1)
        np.testing.assert_allclose(ours, reference)

    def test_cosine_range(self):
        rng = np.random.default_rng(0)
        query = rng.normal(size=8)
        data = rng.normal(size=(20, 8))
        distances = pairwise_distances(query, data, Metric.COSINE)
        assert np.all(distances >= -1e-9)
        assert np.all(distances <= 2 + 1e-9)

    def test_cosine_zero_vector(self):
        query = np.ones(4)
        data = np.zeros((1, 4))
        assert pairwise_distances(query, data, Metric.COSINE)[0] == 1.0

    def test_inner_product_is_negated_dot(self):
        query = np.array([1.0, 0.0])
        data = np.array([[2.0, 0.0], [0.5, 0.0]])
        distances = pairwise_distances(query, data, Metric.INNER_PRODUCT)
        assert distances[0] < distances[1]

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            pairwise_distances(np.ones(3), np.ones((5, 4)))


class TestDataset:
    def test_clustered_generation_shape(self):
        rng = np.random.default_rng(0)
        dataset = generate_clustered_dataset(100, 8, 5, rng)
        assert len(dataset) == 100
        assert dataset.dim == 8

    def test_default_ids(self):
        dataset = VectorDataset(vectors=np.zeros((3, 2)))
        assert dataset.ids == [0, 1, 2]

    def test_id_mismatch_rejected(self):
        with pytest.raises(VectorError):
            VectorDataset(vectors=np.zeros((3, 2)), ids=[1])

    def test_query_set_dim(self):
        rng = np.random.default_rng(0)
        dataset = generate_clustered_dataset(50, 6, 3, rng)
        queries = generate_query_set(dataset, 7, rng)
        assert queries.shape == (7, 6)


class TestKMeans:
    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 0.05, size=(40, 2))
        b = rng.normal(5, 0.05, size=(40, 2)) + np.array([5.0, 0.0])
        data = np.vstack([a, b])
        result = kmeans(data, 2, rng)
        labels_a = set(result.assignments[:40])
        labels_b = set(result.assignments[40:])
        assert labels_a != labels_b
        assert len(labels_a) == 1
        assert len(labels_b) == 1

    def test_k_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(VectorError):
            kmeans(np.zeros((3, 2)), 5, rng)
        with pytest.raises(VectorError):
            kmeans(np.zeros((3, 2)), 0, rng)

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(120, 4))
        loose = kmeans(data, 2, np.random.default_rng(0)).inertia
        tight = kmeans(data, 12, np.random.default_rng(0)).inertia
        assert tight < loose


class TestBruteForce:
    def test_exact_neighbours(self):
        data = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        index = BruteForceIndex()
        index.build(VectorDataset(vectors=data))
        result = index.search(np.array([0.1, 0.0]), 2)
        assert result.ids == [0, 1]
        assert result.guarantee_delta == 0.0

    def test_threshold_empty_result(self):
        data = np.array([[10.0, 10.0]])
        index = BruteForceIndex(max_distance=1.0)
        index.build(VectorDataset(vectors=data))
        result = index.search(np.array([0.0, 0.0]), 1)
        assert result.ids == []
        assert result.empty_by_threshold

    def test_k_clamped_to_dataset(self):
        index = BruteForceIndex()
        index.build(VectorDataset(vectors=np.zeros((3, 2))))
        assert len(index.search(np.zeros(2), 10)) == 3

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            BruteForceIndex().search(np.zeros(2), 1)

    def test_invalid_k(self):
        index = BruteForceIndex()
        index.build(VectorDataset(vectors=np.zeros((3, 2))))
        with pytest.raises(ValueError):
            index.search(np.zeros(2), 0)


def _mean_recall(index, dataset, queries, exact_results, k=10):
    recalls = []
    for query, exact in zip(queries, exact_results):
        result = index.search(query, k)
        recalls.append(recall_at_k(result.ids, exact.ids))
    return float(np.mean(recalls))


@pytest.fixture(scope="module")
def search_setup(clustered_vectors):
    dataset, queries = clustered_vectors
    brute = BruteForceIndex()
    brute.build(dataset)
    exact = [brute.search(query, 10) for query in queries]
    return dataset, queries, exact


class TestApproximateIndexes:
    def test_ivf_recall_reasonable(self, search_setup):
        dataset, queries, exact = search_setup
        index = IVFIndex(n_lists=16, n_probe=4, seed=1)
        index.build(dataset)
        assert _mean_recall(index, dataset, queries, exact) >= 0.8

    def test_ivf_work_less_than_brute(self, search_setup):
        dataset, queries, _exact = search_setup
        index = IVFIndex(n_lists=16, n_probe=2, seed=1)
        index.build(dataset)
        result = index.search(queries[0], 10)
        assert result.distance_computations < len(dataset)

    def test_ivf_more_probes_never_lower_recall(self, search_setup):
        dataset, queries, exact = search_setup
        index = IVFIndex(n_lists=16, seed=1)
        index.build(dataset)
        few = np.mean([
            recall_at_k(index.search_with_probes(q, 10, 1).ids, e.ids)
            for q, e in zip(queries, exact)
        ])
        many = np.mean([
            recall_at_k(index.search_with_probes(q, 10, 16).ids, e.ids)
            for q, e in zip(queries, exact)
        ])
        assert many >= few
        assert many == pytest.approx(1.0)

    def test_hnsw_recall_reasonable(self, search_setup):
        dataset, queries, exact = search_setup
        index = HNSWIndex(m=8, ef_construction=48, ef_search=48, seed=1)
        index.build(dataset)
        assert _mean_recall(index, dataset, queries, exact) >= 0.9

    def test_hnsw_param_validation(self):
        with pytest.raises(VectorError):
            HNSWIndex(m=1)
        with pytest.raises(VectorError):
            HNSWIndex(ef_search=0)

    def test_lsh_returns_candidates(self, search_setup):
        dataset, queries, exact = search_setup
        index = LSHIndex(n_tables=8, n_bits=10, seed=1)
        index.build(dataset)
        assert _mean_recall(index, dataset, queries, exact) >= 0.5

    def test_lsh_param_validation(self):
        with pytest.raises(VectorError):
            LSHIndex(n_tables=0)


class TestProgressive:
    def test_full_scan_matches_brute(self, search_setup):
        dataset, queries, exact = search_setup
        index = ProgressiveIndex(delta=0.01, stop_rule="hypergeometric", seed=1)
        index.build(dataset)
        result = index.search(queries[0], 10)
        assert set(result.ids) == set(exact[0].ids)

    def test_delta_validation(self):
        with pytest.raises(VectorError):
            ProgressiveIndex(delta=0.0)
        with pytest.raises(VectorError):
            ProgressiveIndex(stop_rule="bogus")

    def test_guarantee_annotation(self, search_setup):
        dataset, queries, _exact = search_setup
        index = ProgressiveIndex(delta=0.2, stop_rule="rule_of_three", seed=1)
        index.build(dataset)
        result = index.search(queries[0], 10)
        if result.metadata["stopped_early"]:
            assert result.guarantee_delta == 0.2
        else:
            assert result.guarantee_delta == 0.0

    def test_high_recall_at_any_delta(self, search_setup):
        dataset, queries, exact = search_setup
        index = ProgressiveIndex(delta=0.3, stop_rule="rule_of_three", seed=1)
        index.build(dataset)
        assert _mean_recall(index, dataset, queries, exact) >= 1.0 - 0.3

    def test_prefix_containment_probability(self):
        assert prefix_containment_probability(10, 10, 3) == 1.0
        assert prefix_containment_probability(10, 2, 3) == 0.0
        # C(8,2)/C(10,5) path: m=5,n=10,k=3 -> (5*4*3)/(10*9*8) = 1/12
        assert prefix_containment_probability(10, 5, 3) == pytest.approx(1 / 12)

    def test_hypergeometric_stops_late(self, search_setup):
        # The exact guarantee is conservative: for delta=0.05 it must scan
        # almost everything -- the paper's "guaranteed methods are slow".
        dataset, queries, _exact = search_setup
        index = ProgressiveIndex(delta=0.05, stop_rule="hypergeometric", seed=1)
        index.build(dataset)
        result = index.search(queries[0], 10)
        assert result.distance_computations >= 0.9 * len(dataset)


class TestLearnedStop:
    def test_training_and_prediction(self, search_setup):
        dataset, queries, exact = search_setup
        rng = np.random.default_rng(3)
        index = LearnedStopIVFIndex(n_lists=16, seed=1)
        index.build(dataset)
        train = generate_query_set(dataset, 40, rng)
        index.train(train, k=10)
        assert index.is_trained
        probes = index.predict_probes(queries[0])
        assert 1 <= probes <= 16

    def test_recall_with_learned_probes(self, search_setup):
        dataset, queries, exact = search_setup
        rng = np.random.default_rng(3)
        index = LearnedStopIVFIndex(n_lists=16, seed=1, safety_margin=1.5)
        index.build(dataset)
        index.train(generate_query_set(dataset, 40, rng), k=10)
        assert _mean_recall(index, dataset, queries, exact) >= 0.85

    def test_untrained_search_fails(self, search_setup):
        dataset, _queries, _exact = search_setup
        index = LearnedStopIVFIndex(n_lists=8, seed=1)
        index.build(dataset)
        with pytest.raises(IndexNotBuiltError):
            index.predict_probes(np.zeros(dataset.dim))

    def test_train_requires_enough_queries(self, search_setup):
        dataset, _queries, _exact = search_setup
        index = LearnedStopIVFIndex(n_lists=8, seed=1)
        index.build(dataset)
        with pytest.raises(VectorError):
            index.train(np.zeros((2, dataset.dim)), k=5)

    def test_probes_needed_covers_exact_topk(self, search_setup):
        dataset, queries, exact = search_setup
        index = LearnedStopIVFIndex(n_lists=16, seed=1)
        index.build(dataset)
        needed = index.probes_needed(queries[0], 10)
        result = index.search_with_probes(queries[0], 10, needed)
        assert recall_at_k(result.ids, exact[0].ids) == 1.0
