"""Tests for the expression compiler: semantics parity with the evaluator.

Every compiled closure must behave exactly like
:class:`~repro.sqldb.expressions.ExpressionEvaluator` — same values, same
NULL propagation, same errors — including the deliberate laziness rules:
compile-time-detectable errors (unknown column, constant division by
zero) surface on the *first row*, never at compile time, so empty
relations behave identically under both engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.sqldb.compile import compile_expression, compile_many
from repro.sqldb.expressions import (
    BoundColumn,
    ExpressionEvaluator,
    RowContext,
    RowLayout,
)
from repro.sqldb.parser import parse_sql


LAYOUT = RowLayout(
    [
        BoundColumn(binding="t", name="a"),
        BoundColumn(binding="t", name="b"),
        BoundColumn(binding="t", name="c"),
    ]
)

ROWS = [
    (1, 10, "x"),
    (2, None, "y"),
    (None, 30, None),
    (0, -5, "xyz"),
]


def _expr(sql: str):
    """Parse a bare expression by wrapping it in a SELECT."""
    return parse_sql(f"SELECT {sql}").items[0].expression


def _check_parity(sql: str, rows=ROWS, layout=LAYOUT) -> None:
    """Compiled and interpreted evaluation must agree value-for-value."""
    expression = _expr(sql)
    compiled = compile_expression(expression, layout)
    evaluator = ExpressionEvaluator()
    for values in rows:
        try:
            expected = evaluator.evaluate(expression, RowContext(layout, values))
            raised = None
        except ExecutionError as error:
            raised = str(error)
        if raised is None:
            assert compiled(values) == expected, (sql, values)
        else:
            with pytest.raises(ExecutionError):
                compiled(values)


class TestColumnResolution:
    def test_index_resolved_at_compile_time(self):
        fn = compile_expression(_expr("t.b"), LAYOUT)
        assert fn((1, 2, 3)) == 2

    def test_unqualified_name(self):
        fn = compile_expression(_expr("c"), LAYOUT)
        assert fn((1, 2, "hello")) == "hello"

    def test_unknown_column_raises_lazily(self):
        # Compilation must succeed; the error fires on first evaluation,
        # so an empty relation (which never evaluates) never sees it.
        fn = compile_expression(_expr("nope"), LAYOUT)
        with pytest.raises(ExecutionError, match="nope"):
            fn((1, 2, 3))

    def test_ambiguous_column_raises_lazily(self):
        layout = RowLayout(
            [BoundColumn(binding="x", name="a"), BoundColumn(binding="y", name="a")]
        )
        fn = compile_expression(_expr("a"), layout)
        with pytest.raises(ExecutionError, match="ambiguous"):
            fn((1, 2))


class TestConstantFolding:
    def test_constant_arithmetic_folds(self):
        fn = compile_expression(_expr("1 + 2 * 3"), LAYOUT)
        assert fn(()) == 7

    def test_constant_division_by_zero_raises_lazily(self):
        fn = compile_expression(_expr("1 / 0"), LAYOUT)
        with pytest.raises(ExecutionError):
            fn((1, 2, 3))

    def test_constant_function_folds(self):
        fn = compile_expression(_expr("UPPER('abc')"), LAYOUT)
        assert fn(()) == "ABC"

    def test_folding_does_not_change_null_semantics(self):
        fn = compile_expression(_expr("NULL + 1"), LAYOUT)
        assert fn(()) is None


class TestOperatorSemantics:
    @pytest.mark.parametrize(
        "sql",
        [
            "a = 1",
            "a <> 2",
            "b > 0",
            "b >= 10",
            "a < 2",
            "b <= -5",
            "a + b",
            "a - b",
            "a * b",
            "b / 2",
            "b % 3",
            "-a",
            "NOT (a = 1)",
            "a = 1 AND b > 0",
            "a = 1 OR b > 0",
            "a IS NULL",
            "a IS NOT NULL",
            "a IN (1, 2)",
            "a IN (1, NULL)",
            "a NOT IN (2, 3)",
            "a BETWEEN 0 AND 2",
            "a NOT BETWEEN 0 AND 1",
            "c LIKE 'x%'",
            "c LIKE '_'",
            "c NOT LIKE '%y%'",
            "UPPER(c)",
            "LENGTH(c)",
            "COALESCE(a, b, 99)",
            "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END",
            "CASE WHEN a > b THEN a ELSE b END",
            "a = 1 AND b = 10 AND c = 'x'",
        ],
    )
    def test_matches_interpreter(self, sql):
        _check_parity(sql)

    def test_and_short_circuits_on_false(self):
        # FALSE AND <error> → FALSE under both engines.
        _check_parity("a < 0 AND (1 / 0) = 1", rows=[(1, 2, "x")])

    def test_or_short_circuits_on_true(self):
        _check_parity("a = 1 OR (1 / 0) = 1", rows=[(1, 2, "x")])

    def test_kleene_null_and_false(self):
        fn = compile_expression(_expr("b > 5 AND a = 99"), LAYOUT)
        # b NULL, a mismatched: NULL AND FALSE = FALSE
        assert fn((1, None, "x")) is False

    def test_type_mismatch_comparison_raises(self):
        fn = compile_expression(_expr("a > 'text'"), LAYOUT)
        with pytest.raises(ExecutionError):
            fn((1, 2, "x"))

    def test_like_constant_pattern_precompiled(self):
        fn = compile_expression(_expr("c LIKE '%y%'"), LAYOUT)
        assert fn((1, 2, "xyz")) is True
        assert fn((1, 2, "abc")) is False
        assert fn((1, 2, None)) is None

    def test_like_null_constant_pattern(self):
        fn = compile_expression(_expr("c LIKE NULL"), LAYOUT)
        assert fn((1, 2, "x")) is None

    def test_like_nonconstant_pattern(self):
        fn = compile_expression(_expr("c LIKE c"), LAYOUT)
        assert fn((1, 2, "x%")) is True


class TestAggregateSlots:
    def test_aggregate_reads_slot(self):
        expression = _expr("COUNT(*)")
        fn = compile_expression(
            expression, LAYOUT, aggregate_slots={expression.to_sql(): 3}
        )
        assert fn((1, 2, "x", 42)) == 42

    def test_aggregate_outside_group_raises_lazily(self):
        fn = compile_expression(_expr("COUNT(*)"), LAYOUT)
        with pytest.raises(ExecutionError, match="grouped context"):
            fn((1, 2, "x"))


class TestSubqueries:
    def test_subquery_lazy_and_memoized(self):
        calls = []

        def runner(statement):
            calls.append(statement.to_sql())
            return [(7,)]

        cache: dict[str, list[tuple]] = {}
        fns = compile_many(
            [_expr("a = (SELECT 7)"), _expr("b = (SELECT 7)")],
            LAYOUT,
            subquery_runner=runner,
            subquery_cache=cache,
        )
        assert calls == []  # nothing runs at compile time
        assert fns[0]((7, 0, "x")) is True
        assert fns[1]((0, 7, "x")) is True
        assert len(calls) == 1  # shared memo: the subquery ran once

    def test_subquery_without_runner_raises(self):
        fn = compile_expression(_expr("a = (SELECT 1)"), LAYOUT)
        with pytest.raises(ExecutionError, match="not available"):
            fn((1, 2, "x"))

    def test_in_subquery_null_semantics(self):
        fn = compile_expression(
            _expr("a IN (SELECT 1)"),
            LAYOUT,
            subquery_runner=lambda statement: [(1,), (None,)],
        )
        assert fn((1, 0, "x")) is True
        assert fn((2, 0, "x")) is None  # non-member vs NULL in set → NULL
        assert fn((None, 0, "x")) is None


# -- randomized expression parity -------------------------------------------------

_NUM_ATOMS = st.sampled_from(["a", "b", "1", "2", "0", "NULL"])
_OPS = st.sampled_from(["+", "-", "*", "=", "<>", "<", "<=", ">", ">="])


@st.composite
def _expressions(draw, depth=2) -> str:
    if depth == 0 or draw(st.booleans()):
        return draw(_NUM_ATOMS)
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        left = draw(_expressions(depth=depth - 1))
        right = draw(_expressions(depth=depth - 1))
        return f"({left} {draw(_OPS)} {right})"
    if kind == 1:
        operand = draw(_expressions(depth=depth - 1))
        return f"({operand} IS {'NOT ' if draw(st.booleans()) else ''}NULL)"
    if kind == 2:
        operand = draw(_expressions(depth=depth - 1))
        return f"(-{operand})"
    operand = draw(_expressions(depth=depth - 1))
    low = draw(_NUM_ATOMS)
    high = draw(_NUM_ATOMS)
    return f"({operand} BETWEEN {low} AND {high})"


class TestRandomizedExpressionParity:
    @settings(max_examples=200, deadline=None)
    @given(sql=_expressions())
    def test_compiled_matches_interpreted(self, sql):
        _check_parity(sql)
