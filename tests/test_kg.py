"""Tests for the knowledge-graph substrate."""

import pytest

from repro.errors import KGError, OntologyError
from repro.kg import (
    DomainVocabulary,
    EntityLinker,
    Ontology,
    SchemaKnowledgeGraph,
    Triple,
    TriplePattern,
    TripleStore,
    Variable,
    VocabularyTerm,
    bgp_query,
)
from repro.kg.query import select
from repro.kg.vocabulary import edit_similarity, token_overlap, trigram_similarity


class TestTripleStore:
    def make(self):
        store = TripleStore()
        store.add("ent:a", "knows", "ent:b")
        store.add("ent:b", "knows", "ent:c")
        store.add("ent:a", "age", 30)
        return store

    def test_add_idempotent(self):
        store = self.make()
        size = len(store)
        store.add("ent:a", "knows", "ent:b")
        assert len(store) == size

    def test_contains(self):
        store = self.make()
        assert Triple("ent:a", "knows", "ent:b") in store
        assert Triple("ent:a", "knows", "ent:z") not in store

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            (("ent:a", None, None), 2),
            ((None, "knows", None), 2),
            ((None, None, "ent:b"), 1),
            (("ent:a", "knows", None), 1),
            ((None, "knows", "ent:c"), 1),
            (("ent:a", None, 30), 1),
            ((None, None, None), 3),
        ],
    )
    def test_wildcard_matching(self, pattern, expected):
        store = self.make()
        assert len(store.match(*pattern)) == expected

    def test_remove(self):
        store = self.make()
        assert store.remove("ent:a", "knows", "ent:b")
        assert not store.remove("ent:a", "knows", "ent:b")
        assert len(store.match("ent:a", "knows", None)) == 0

    def test_literal_objects(self):
        store = self.make()
        assert store.match(None, "age", 30)[0].subject == "ent:a"

    def test_one_object(self):
        store = self.make()
        assert store.one_object("ent:a", "age") == 30
        store.add("ent:a", "age", 31)
        assert store.one_object("ent:a", "age") is None

    def test_empty_subject_rejected(self):
        with pytest.raises(KGError):
            TripleStore().add("", "p", "o")


class TestBGPQuery:
    def make(self):
        store = TripleStore()
        store.add_all(
            [
                ("alice", "works_at", "acme"),
                ("bob", "works_at", "acme"),
                ("carol", "works_at", "globex"),
                ("acme", "located_in", "zurich"),
                ("globex", "located_in", "bern"),
            ]
        )
        return store

    def test_single_pattern(self):
        bindings = bgp_query(
            self.make(), [TriplePattern(Variable("who"), "works_at", "acme")]
        )
        assert {binding["who"] for binding in bindings} == {"alice", "bob"}

    def test_join_across_patterns(self):
        bindings = bgp_query(
            self.make(),
            [
                TriplePattern(Variable("p"), "works_at", Variable("c")),
                TriplePattern(Variable("c"), "located_in", "zurich"),
            ],
        )
        assert {binding["p"] for binding in bindings} == {"alice", "bob"}

    def test_shared_variable_consistency(self):
        store = TripleStore()
        store.add("x", "p", "x")
        store.add("y", "p", "z")
        bindings = bgp_query(
            store, [TriplePattern(Variable("a"), "p", Variable("a"))]
        )
        assert [binding["a"] for binding in bindings] == ["x"]

    def test_filters(self):
        bindings = bgp_query(
            self.make(),
            [TriplePattern(Variable("who"), "works_at", Variable("c"))],
            filters=[lambda binding: binding["who"] != "bob"],
        )
        assert all(binding["who"] != "bob" for binding in bindings)

    def test_no_match_is_empty(self):
        assert bgp_query(
            self.make(), [TriplePattern("nobody", "works_at", Variable("c"))]
        ) == []

    def test_empty_patterns_rejected(self):
        with pytest.raises(KGError):
            bgp_query(self.make(), [])

    def test_select_projection_dedupes(self):
        rows = select(
            self.make(),
            ["c"],
            [TriplePattern(Variable("p"), "works_at", Variable("c"))],
        )
        assert sorted(rows) == [("acme",), ("globex",)]


class TestOntology:
    def make(self):
        ontology = Ontology()
        ontology.add_class("cls:Animal", label="animal")
        ontology.add_class("cls:Dog", label="dog", parent="cls:Animal")
        ontology.add_class("cls:Puppy", label="puppy", parent="cls:Dog")
        ontology.add_instance("rex", "cls:Puppy", label="rex")
        return ontology

    def test_transitive_ancestors(self):
        assert self.make().ancestors("cls:Puppy") == ["cls:Animal", "cls:Dog"]

    def test_descendants(self):
        assert self.make().descendants("cls:Animal") == ["cls:Dog", "cls:Puppy"]

    def test_is_subclass_of(self):
        ontology = self.make()
        assert ontology.is_subclass_of("cls:Puppy", "cls:Animal")
        assert not ontology.is_subclass_of("cls:Animal", "cls:Puppy")

    def test_type_inheritance(self):
        assert "cls:Animal" in self.make().types_of("rex")

    def test_instances_with_inference(self):
        assert self.make().instances_of("cls:Animal") == ["rex"]

    def test_is_a(self):
        assert self.make().is_a("rex", "cls:Dog")

    def test_cycle_rejected(self):
        ontology = self.make()
        with pytest.raises(OntologyError):
            ontology.add_subclass("cls:Animal", "cls:Puppy")

    def test_self_subclass_rejected(self):
        with pytest.raises(OntologyError):
            self.make().add_subclass("cls:Dog", "cls:Dog")

    def test_labels(self):
        ontology = self.make()
        assert ontology.label("rex") == "rex"
        assert ontology.label("unknown:thing") == "unknown:thing"


class TestSimilarityKernels:
    def test_trigram_identity(self):
        assert trigram_similarity("abc", "abc") == 1.0

    def test_token_overlap(self):
        assert token_overlap("labour market", "market data") == pytest.approx(1 / 3)

    def test_edit_similarity_typo(self):
        assert edit_similarity("caapcity", "capacity") >= 0.7

    def test_edit_similarity_transposition_single_edit(self):
        # OSA counts 'wieght' -> 'weight' as one edit.
        assert edit_similarity("wieght", "weight") == pytest.approx(1 - 1 / 6)

    def test_edit_similarity_bounds(self):
        assert edit_similarity("", "abc") == 0.0
        assert 0.0 <= edit_similarity("abc", "xyz") <= 1.0


class TestVocabulary:
    def make(self):
        vocabulary = DomainVocabulary()
        vocabulary.add_term(
            VocabularyTerm(
                name="employment",
                definition="people in work",
                synonyms=["working force", "workforce", "labour market"],
                schema_bindings=["table:employment"],
            )
        )
        vocabulary.add_term(
            VocabularyTerm(name="barometer", synonyms=["leading indicator"])
        )
        return vocabulary

    def test_exact_lookup(self):
        hit = self.make().lookup("employment")
        assert hit.match_kind == "exact"
        assert hit.score == 1.0

    def test_synonym_lookup(self):
        hit = self.make().lookup("working force")
        assert hit.term.name == "employment"
        assert hit.match_kind == "synonym"

    def test_fuzzy_lookup(self):
        hit = self.make().lookup("employmnt")
        assert hit is not None
        assert hit.term.name == "employment"

    def test_no_match(self):
        assert self.make().lookup("astronomy") is None

    def test_ground_question_prefers_exact_spans(self):
        grounded = self.make().ground_question(
            "overview of the working force in switzerland"
        )
        assert grounded
        assert grounded[0].term.name == "employment"
        assert grounded[0].match_kind == "synonym"

    def test_ground_question_multiple_terms(self):
        names = {
            hit.term.name
            for hit in self.make().ground_question(
                "is the barometer related to employment"
            )
        }
        assert names == {"barometer", "employment"}

    def test_duplicate_term_rejected(self):
        vocabulary = self.make()
        with pytest.raises(KGError):
            vocabulary.add_term(VocabularyTerm(name="employment"))

    def test_colliding_synonym_rejected(self):
        vocabulary = self.make()
        with pytest.raises(KGError):
            vocabulary.add_term(
                VocabularyTerm(name="jobs", synonyms=["workforce"])
            )

    def test_expand(self):
        assert "workforce" in self.make().expand("employment")


class TestEntityLinker:
    def test_links_schema_labels(self, employees_kg):
        linker = EntityLinker(employees_kg.ontology)
        links = linker.link_text("average salary per department")
        mentions = {link.mention: link.entity for link in links}
        assert mentions.get("salary") == "column:employees.salary"

    def test_ambiguity_reported(self, employees_kg):
        linker = EntityLinker(employees_kg.ontology, ambiguity_margin=0.5)
        links = linker.link_text("department")
        assert links
        # 'department' exists in both tables: competitors must be visible.
        assert links[0].ambiguous_with

    def test_below_threshold_returns_none(self, employees_kg):
        linker = EntityLinker(employees_kg.ontology)
        assert linker.link_phrase("zzzzqqq") is None

    def test_refresh_picks_up_new_labels(self, employees_kg):
        linker = EntityLinker(employees_kg.ontology)
        employees_kg.ontology.add_instance(
            "ent:new", "cda:Table", label="brand new table"
        )
        assert linker.link_phrase("brand new table") is None
        linker.refresh()
        assert linker.link_phrase("brand new table") is not None


class TestSchemaKG:
    def test_tables_and_columns(self, employees_kg):
        assert set(employees_kg.tables()) == {"employees", "departments"}
        assert "salary" in employees_kg.columns_of("employees")

    def test_datatype(self, employees_kg):
        assert employees_kg.datatype_of("employees", "salary") == "FLOAT"
        assert employees_kg.datatype_of("employees", "name") == "TEXT"

    def test_find_tables_by_phrase(self, employees_kg):
        matches = employees_kg.find_tables("employees data")
        assert matches[0].table == "employees"

    def test_find_columns_scoped(self, employees_kg):
        matches = employees_kg.find_columns("budget", table="departments")
        assert matches[0].column == "budget"
        assert not employees_kg.find_columns("budget", table="employees", min_score=0.9)

    def test_value_index_exact(self, employees_kg):
        hits = employees_kg.find_values("zurich")
        assert [(hit.table, hit.column) for hit in hits] == [("employees", "city")]

    def test_value_index_preserves_case(self, employees_kg):
        hits = employees_kg.exact_value_columns("ZURICH")
        assert hits == [("employees", "city", "zurich")]

    def test_join_edges_and_path(self, employees_kg):
        assert employees_kg.join_path("employees", "departments") == [
            ("employees", "department", "departments", "department")
        ]
        assert employees_kg.join_path("employees", "employees") == []

    def test_no_join_path(self, employees_db):
        employees_db.catalog.drop_table("departments")
        kg = SchemaKnowledgeGraph(employees_db.catalog)
        assert kg.join_path("employees", "nonexistent") == []

    def test_value_index_can_be_disabled(self, employees_db):
        kg = SchemaKnowledgeGraph(employees_db.catalog, index_values=False)
        assert kg.find_values("zurich") == []

    def test_high_cardinality_columns_skipped(self, employees_db):
        kg = SchemaKnowledgeGraph(employees_db.catalog, max_distinct_values=2)
        # 'name' has 5 distinct values > 2; 'city' has 3 > 2.
        assert kg.find_values("ann") == []
