"""Tests for scalar functions and aggregate accumulators."""

import math

import pytest

from repro.errors import ExecutionError
from repro.sqldb.aggregates import aggregate_names, make_aggregator
from repro.sqldb.functions import call_scalar_function, scalar_function_names


def call(name, *args):
    return call_scalar_function(name, list(args))


class TestStringFunctions:
    def test_upper_lower(self):
        assert call("UPPER", "abc") == "ABC"
        assert call("LOWER", "ABC") == "abc"

    def test_length(self):
        assert call("LENGTH", "hello") == 5

    def test_trim(self):
        assert call("TRIM", "  x  ") == "x"

    def test_substr(self):
        assert call("SUBSTR", "hello", 2) == "ello"
        assert call("SUBSTR", "hello", 2, 3) == "ell"

    def test_substr_one_based(self):
        with pytest.raises(ExecutionError):
            call("SUBSTR", "hello", 0)

    def test_replace(self):
        assert call("REPLACE", "aXbX", "X", "-") == "a-b-"

    def test_concat(self):
        assert call("CONCAT", "a", "b", "c") == "abc"


class TestNumericFunctions:
    def test_abs(self):
        assert call("ABS", -3) == 3

    def test_round_default(self):
        assert call("ROUND", 2.6) == 3
        assert isinstance(call("ROUND", 2.6), int)

    def test_round_digits(self):
        assert call("ROUND", 2.345, 2) == 2.35

    def test_floor_ceil(self):
        assert call("FLOOR", 2.9) == 2
        assert call("CEIL", 2.1) == 3

    def test_sqrt(self):
        assert call("SQRT", 9) == 3.0

    def test_sqrt_negative(self):
        with pytest.raises(ExecutionError):
            call("SQRT", -1)

    def test_power(self):
        assert call("POWER", 2, 10) == 1024.0

    def test_mod(self):
        assert call("MOD", 7, 3) == 1

    def test_mod_zero(self):
        with pytest.raises(ExecutionError):
            call("MOD", 1, 0)


class TestDateFunctions:
    def test_year_month_day(self):
        assert call("YEAR", "2024-03-15") == 2024
        assert call("MONTH", "2024-03-15") == 3
        assert call("DAY", "2024-03-15") == 15

    def test_invalid_date(self):
        with pytest.raises(ExecutionError):
            call("YEAR", "not-a-date")


class TestNullHandling:
    def test_null_passthrough(self):
        assert call("UPPER", None) is None
        assert call("ROUND", None) is None

    def test_coalesce(self):
        assert call("COALESCE", None, None, 3) == 3
        assert call("COALESCE", None, None) is None

    def test_nullif(self):
        assert call("NULLIF", 1, 1) is None
        assert call("NULLIF", 1, 2) == 1
        assert call("NULLIF", None, 1) is None

    def test_ifnull(self):
        assert call("IFNULL", None, 5) == 5
        assert call("IFNULL", 1, 5) == 1


class TestFunctionErrors:
    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            call("NOPE", 1)

    def test_arity_check(self):
        with pytest.raises(ExecutionError):
            call("UPPER", "a", "b")

    def test_type_check(self):
        with pytest.raises(ExecutionError):
            call("UPPER", 5)

    def test_registry_listing(self):
        names = scalar_function_names()
        assert "UPPER" in names
        assert names == sorted(names)


class TestAggregators:
    def test_count_skips_nulls(self):
        agg = make_aggregator("COUNT")
        for value in [1, None, 2, None]:
            agg.step(value)
        assert agg.finalize() == 2

    def test_count_star_counts_everything(self):
        agg = make_aggregator("COUNT", star=True)
        for value in [1, None, 2]:
            agg.step(value)
        assert agg.finalize() == 3

    def test_sum(self):
        agg = make_aggregator("SUM")
        for value in [1, 2, None, 3]:
            agg.step(value)
        assert agg.finalize() == 6

    def test_sum_all_null_is_null(self):
        agg = make_aggregator("SUM")
        agg.step(None)
        assert agg.finalize() is None

    def test_avg(self):
        agg = make_aggregator("AVG")
        for value in [2, 4, None]:
            agg.step(value)
        assert agg.finalize() == 3.0

    def test_avg_empty_is_null(self):
        assert make_aggregator("AVG").finalize() is None

    def test_min_max(self):
        low = make_aggregator("MIN")
        high = make_aggregator("MAX")
        for value in [3, None, 1, 2]:
            low.step(value)
            high.step(value)
        assert low.finalize() == 1
        assert high.finalize() == 3

    def test_min_on_strings(self):
        agg = make_aggregator("MIN")
        for value in ["pear", "apple"]:
            agg.step(value)
        assert agg.finalize() == "apple"

    def test_variance_and_stddev(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        var = make_aggregator("VARIANCE")
        std = make_aggregator("STDDEV")
        for value in values:
            var.step(value)
            std.step(value)
        assert var.finalize() == pytest.approx(32.0 / 7.0)
        assert std.finalize() == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_variance_needs_two_values(self):
        agg = make_aggregator("VARIANCE")
        agg.step(1.0)
        assert agg.finalize() is None

    def test_distinct_wrapper(self):
        agg = make_aggregator("SUM", distinct=True)
        for value in [1, 1, 2, 2, 3]:
            agg.step(value)
        assert agg.finalize() == 6

    def test_count_distinct(self):
        agg = make_aggregator("COUNT", distinct=True)
        for value in ["a", "a", "b", None]:
            agg.step(value)
        assert agg.finalize() == 2

    def test_star_only_for_count(self):
        with pytest.raises(ExecutionError):
            make_aggregator("SUM", star=True)

    def test_count_distinct_star_invalid(self):
        with pytest.raises(ExecutionError):
            make_aggregator("COUNT", star=True, distinct=True)

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            make_aggregator("MEDIAN")

    def test_sum_rejects_text(self):
        agg = make_aggregator("SUM")
        with pytest.raises(ExecutionError):
            agg.step("x")

    def test_names(self):
        assert set(aggregate_names()) == {
            "AVG", "COUNT", "MAX", "MIN", "STDDEV", "SUM", "VARIANCE"
        }
